"""CI perf-regression gate for the substrate benchmark.

Compares a freshly generated ``substrate-benchmark.json`` (see
``bench_substrate_performance.py --json``) against the checked-in baseline at
``benchmarks/baselines/substrate-baseline.json`` and exits non-zero when the
performance or the numerical equivalence of the optimised paths regressed::

    PYTHONPATH=src python benchmarks/bench_substrate_performance.py \
        --quick --json substrate-benchmark.json
    python benchmarks/check_regression.py substrate-benchmark.json

Three families of checks run:

* **Correctness-equivalence** (absolute, machine-independent): the batched /
  banded / Thomas paths must still reproduce the sequential / dense
  references to tight tolerances.  Any violation fails the gate regardless
  of timing.
* **Speedup ratios vs the baseline** (dimensionless, machine-independent):
  each optimised-vs-reference speedup measured *within one run* must not
  fall below ``baseline / max_slowdown`` (default 1.3x).  Ratios are used
  instead of raw seconds so the gate is stable across differently sized CI
  machines.
* **Hard floors** from the acceptance criteria: the banded operator must
  stay at least 2x faster than dense LU per step at n = 4000, the async
  prediction service at least 2x faster than the sequential per-story loop
  at corpus size 100, the daemon's submission round-trip must stay
  within 2.5x of the in-process service on the same corpus (efficiency
  floor 0.4), the process execution backend must reach a
  core-count-normalized scaling efficiency of 0.625 at 4 workers vs 1
  (>= 2.5x speedup on any >=4-core runner), the cluster backend's routing
  overhead against a 2-worker localhost fleet must stay within 4x of the
  thread executor (efficiency floor 0.25), and the corpus store must
  open+resolve at least 2x faster than the inline-manifest path while
  scoring bit-identically inside its bounded-RSS budget.

Each run also appends its dimensionless ratios to
``benchmarks/history/ratios.jsonl`` (disable with ``--no-history``), so CI
can archive a trend line across runs and slow drifts inside the 1.3x band
stay visible.

Regenerate the baseline (only when a PR intentionally changes the
performance envelope) with::

    PYTHONPATH=src python benchmarks/bench_substrate_performance.py \
        --quick --json benchmarks/baselines/substrate-baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "substrate-baseline.json"
DEFAULT_HISTORY_DIR = Path(__file__).parent / "history"

#: (dotted metric path, absolute tolerance) -- numerical-equivalence gates.
CORRECTNESS_CHECKS = (
    ("calibration.max_parameter_delta", 1e-8),
    ("calibration.loss_delta", 1e-8),
    ("refine.max_parameter_delta", 1e-8),
    ("solver.max_state_delta", 1e-10),
    ("operator.banded.max_state_delta_vs_dense", 1e-10),
    ("operator.thomas.max_state_delta_vs_dense", 1e-10),
    # The async service reorganises scheduling, never numerics: per-story
    # results must match the synchronous BatchPredictor exactly.
    ("service.max_result_delta_vs_batch", 1e-12),
    # The model registry adds dispatch, never numerics: a registered
    # baseline served through the queue must match its direct loop exactly.
    ("service.logistic.max_result_delta_vs_direct", 1e-12),
    # The daemon only adds transport (JSON events round-trip floats
    # exactly), so its streamed results must match the batch path exactly.
    ("daemon.max_result_delta_vs_batch", 1e-12),
    # The process execution backend moves shard solves to worker processes
    # but ships the same payloads through the same solver: every process
    # run must match the single-threaded reference bit for bit.
    ("service.scaling.max_result_delta_process_vs_thread", 1e-12),
    # The cluster backend ships the same payloads to worker daemons over
    # pickle + base64 + sockets -- transport, never numerics -- so every
    # fleet size must match the thread reference bit for bit.
    ("service.cluster.max_result_delta_cluster_vs_thread", 1e-12),
    # The corpus store is a lossless float64 container: scoring lazily from
    # the store must match the inline-manifest path bit for bit.
    ("corpus.io.max_result_delta_vs_inline", 1e-12),
    # The bounded-RSS acceptance criterion: scoring a whole generated
    # corpus from the store (streamed in chunks, fresh subprocess) must fit
    # in baseline + 64 MB + corpus-bytes/4 -- a positive excess means the
    # lazy path started materializing the corpus.
    ("corpus.io.rss_budget_excess_bytes", 0.0),
    # Tracing must be zero-cost when disabled: the per-story cost of the
    # no-op tracer's guarded instrumentation sites, as a fraction of the
    # measured per-story solve time, stays under 2%.
    ("tracing.noop_overhead_fraction", 0.02),
)

#: Dotted metric paths of within-run speedup ratios gated against the baseline.
#: service.speedup is deliberately NOT here: its numerator and denominator are
#: corpus-level wall-clock times whose ratio swings far more than 1.3x between
#: runs on shared/single-core CI machines (observed 3.6x-8x at identical
#: code), so it is gated by the hard floor below instead.
SPEEDUP_CHECKS = (
    "calibration.speedup",
    "refine.speedup",
    "solver.speedup",
    "operator.banded.speedup_vs_dense",
)

#: (dotted metric path, minimum value) -- unconditional acceptance floors.
FLOOR_CHECKS = (
    ("operator.banded.speedup_vs_dense", 2.0),
    # Acceptance criterion of the service layer: >= 2x throughput over the
    # sequential per-story loop at corpus size 100.
    ("service.speedup", 2.0),
    # Acceptance criterion of the daemon layer: the protocol round-trip
    # (submit over the socket, stream every result back) must stay within
    # 2.5x of scoring the same corpus in process -- like service.speedup
    # this is a corpus-level wall-clock ratio, too noisy for the 1.3x
    # baseline band, so it is gated by a hard floor instead.
    ("daemon.efficiency_vs_inprocess", 0.4),
    # The logistic baseline has no batched solve to amortize, so the
    # service can only add scheduling overhead on top of its direct loop;
    # the floor is deliberately loose (corpus-level wall-clock ratio, same
    # noise caveat as service.speedup) and exists to catch the dispatch
    # path becoming pathologically slow, not to demand a speedup.
    ("service.logistic.speedup_vs_direct", 0.2),
    # Acceptance criterion of the process execution backend: >= 2.5x
    # throughput at 4 workers vs 1 on a calibration-heavy corpus.  The
    # benchmark normalizes the 4-vs-1 speedup by min(4, cpus) so the gate
    # demands exactly 2.5/4 on any >=4-core runner while degrading
    # gracefully on smaller CI boxes (a 1-core machine cannot exhibit
    # process-level parallelism, only its absence of pathological
    # overhead is checked).
    ("service.scaling.process.scaling_efficiency", 0.625),
    # Routing-overhead ceiling of the cluster backend: scoring through a
    # 2-worker localhost fleet (pickle + base64 + socket round-trip per
    # shard, workers sharing the router's cores) must stay within 4x of
    # the thread executor on the same corpus.  A corpus-level wall-clock
    # ratio (same noise caveat as daemon.efficiency_vs_inprocess), so it
    # is floor-gated rather than baseline-banded, and deliberately loose:
    # it catches the transport becoming pathologically slow, not small
    # drifts.
    ("service.cluster.efficiency_vs_thread", 0.25),
    # Acceptance criterion of the corpus store: opening + resolving a
    # generated corpus from the store (lazy handles off the index) must be
    # at least 2x faster than parsing the equivalent inline manifest.
    # A corpus-level wall-clock ratio (same noise caveat as
    # service.speedup), so it is floor-gated rather than baseline-banded.
    ("corpus.io.load_speedup_vs_inline", 2.0),
)


def lookup(report: dict, path: str) -> float:
    """Resolve a dotted path like ``operator.banded.speedup_vs_dense``."""
    node = report
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            raise KeyError(path)
        node = node[key]
    return float(node)


def run_checks(report: dict, baseline: dict, max_slowdown: float) -> "list[tuple[bool, str]]":
    """Evaluate every gate; returns (passed, human-readable line) pairs."""
    results = []

    for path, tolerance in CORRECTNESS_CHECKS:
        try:
            value = lookup(report, path)
        except KeyError:
            results.append((False, f"MISSING {path}: not in the new report"))
            continue
        ok = value <= tolerance
        results.append(
            (ok, f"{'ok  ' if ok else 'FAIL'} {path} = {value:.3e} (tolerance {tolerance:.0e})")
        )

    for path in SPEEDUP_CHECKS:
        try:
            value = lookup(report, path)
        except KeyError:
            results.append((False, f"MISSING {path}: not in the new report"))
            continue
        try:
            reference = lookup(baseline, path)
        except KeyError:
            results.append((False, f"MISSING {path}: not in the baseline (regenerate it)"))
            continue
        required = reference / max_slowdown
        ok = value >= required
        results.append(
            (
                ok,
                f"{'ok  ' if ok else 'FAIL'} {path} = {value:.2f}x "
                f"(baseline {reference:.2f}x, minimum {required:.2f}x)",
            )
        )

    for path, minimum in FLOOR_CHECKS:
        try:
            value = lookup(report, path)
        except KeyError:
            results.append((False, f"MISSING {path}: not in the new report"))
            continue
        ok = value >= minimum
        results.append(
            (ok, f"{'ok  ' if ok else 'FAIL'} {path} = {value:.2f}x (floor {minimum:.2f}x)")
        )

    return results


def append_history(
    report: dict, results: "list[tuple[bool, str]]", history_dir: Path
) -> Path:
    """Append this run's dimensionless ratios to the history artifact.

    One JSON line per gate run lands in ``<history_dir>/ratios.jsonl`` --
    the ROADMAP's trend-tracking artifact.  Only machine-independent values
    are recorded (the within-run speedup ratios, floors and equivalence
    deltas, never raw seconds), so lines from differently sized CI machines
    remain comparable and slow drifts inside the 1.3x tolerance band become
    visible once CI archives a few runs.
    """
    record: dict = {
        "timestamp": report.get("timestamp"),
        "quick": report.get("quick"),
        "passed": all(ok for ok, _ in results),
        "ratios": {},
        "deltas": {},
    }
    tracked_ratios = tuple(SPEEDUP_CHECKS) + tuple(path for path, _ in FLOOR_CHECKS)
    for path in dict.fromkeys(tracked_ratios):  # dedup, stable order
        try:
            record["ratios"][path] = lookup(report, path)
        except KeyError:
            continue
    for path, _ in CORRECTNESS_CHECKS:
        try:
            record["deltas"][path] = lookup(report, path)
        except KeyError:
            continue
    history_dir.mkdir(parents=True, exist_ok=True)
    target = history_dir / "ratios.jsonl"
    with open(target, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return target


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when the substrate benchmark regressed against the baseline."
    )
    parser.add_argument("report", help="substrate-benchmark.json produced by this run")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="checked-in baseline JSON (default: benchmarks/baselines/substrate-baseline.json)",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=1.3,
        help="largest tolerated speedup regression factor vs the baseline (default 1.3)",
    )
    parser.add_argument(
        "--history-dir",
        default=str(DEFAULT_HISTORY_DIR),
        help=(
            "directory receiving the appended ratios.jsonl trend artifact "
            "(default: benchmarks/history)"
        ),
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not append this run's ratios to the history artifact",
    )
    args = parser.parse_args(argv)

    with open(args.report, encoding="utf-8") as handle:
        report = json.load(handle)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)

    results = run_checks(report, baseline, args.max_slowdown)
    failures = [line for ok, line in results if not ok]
    for _, line in results:
        print(line)
    if not args.no_history:
        target = append_history(report, results, Path(args.history_dir))
        print(f"appended ratios to {target}")
    if failures:
        print(
            f"\nregression gate FAILED: {len(failures)} of {len(results)} checks",
            file=sys.stderr,
        )
        return 1
    print(f"\nregression gate passed: {len(results)} checks")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
