"""Shared fixtures for the benchmark harness.

Every benchmark runs against the *benchmark corpus*: the default
``SyntheticDiggConfig`` (6,000 users, 60 background stories, 50-hour
observation window, seed 2009).  The corpus is built once per session and
cached by the library, so individual benchmarks only pay for their own
experiment.

Each benchmark prints the regenerated table/figure series (the same rows the
paper reports) and also writes them to ``benchmarks/results/`` so the
paper-vs-measured comparison in EXPERIMENTS.md can be refreshed from disk.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.experiments import ExperimentContext
from repro.cascade.digg import SyntheticDiggConfig

RESULTS_DIR = Path(__file__).parent / "results"

BENCHMARK_CORPUS_CONFIG = SyntheticDiggConfig()
"""The canonical corpus every experiment benchmark runs on."""


@pytest.fixture(scope="session")
def bench_context() -> ExperimentContext:
    """Experiment context bound to the benchmark corpus (built lazily, cached)."""
    return ExperimentContext(config=BENCHMARK_CORPUS_CONFIG)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benchmarks drop their regenerated tables/series."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiment benchmarks measure end-to-end experiment latency (corpus
    queries + PDE solves + fitting); they are deterministic, so a single round
    is representative and keeps the whole harness fast.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
