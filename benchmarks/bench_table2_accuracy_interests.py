"""TAB-2 -- Prediction accuracy with shared interests as distance (Table II).

Regenerates Table II of the paper: per-group, per-hour prediction accuracy of
the DL model for story s1 with the shared-interest distance groups 1-5.

Paper reference values: groups 1-4 are predicted at 91-97% while group 5
collapses to 39.8% (the paper attributes this to the growth rate needing to
depend on distance as well as time -- its stated future work).  The
reproduction criterion: overall accuracy in the 80-95% band with most groups
predicted well, and at least one boundary group noticeably harder than the
rest.
"""

import numpy as np
from conftest import run_once

from repro.analysis.experiments import run_table2_accuracy_interests
from repro.io.tables import write_csv


def test_table2_prediction_accuracy_interests(benchmark, bench_context, results_dir):
    table = run_once(benchmark, run_table2_accuracy_interests, bench_context)

    print()
    print(table.render("Table II (reproduced) -- prediction accuracy, shared interests, story s1"))
    write_csv(table.to_rows(), results_dir / "table2_accuracy_interests.csv")

    row_averages = [table.row_average(float(d)) for d in table.distances]

    assert table.overall_average > 0.75, "overall accuracy should be comparable to the paper's ~83%"
    # Most groups predicted well...
    assert sum(average > 0.8 for average in row_averages) >= 3
    # ...but the hardest group is clearly worse than the best one, mirroring
    # the paper's group-5 breakdown (97% best row vs 40% worst row).
    assert min(row_averages) < max(row_averages) - 0.1
    assert np.all(np.isfinite(table.accuracies))
