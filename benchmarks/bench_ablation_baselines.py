"""ABL-1 -- DL model vs temporal-only baselines on a forecasting task.

The paper does not compare against baselines; this ablation adds that
comparison for the reproduction.  All models are fitted on hours 1-4 of story
s1 and asked to forecast hours 5-12 (a harder task than the paper's Tables
I/II, which score inside the window the parameters were tuned on).

Models:

* ``diffusive_logistic`` -- the paper's model (calibrated r(t), d; K from the
  carrying-capacity heuristic).
* ``per_distance_logistic`` -- an independent logistic curve per distance
  (the temporal-only ablation; 2 parameters per distance).
* ``sis`` -- an SIS epidemic trajectory per distance.
* ``linear_influence`` -- a linear autoregression on the per-hour density
  increments (no saturation mechanism).

Expected shape: the DL model and the per-distance models are competitive
(the DL model achieves this with 4 shared parameters instead of 2 per
distance), and the non-saturating linear-influence baseline is clearly worse
on the hop-distance task.
"""

from conftest import run_once

from repro.analysis.experiments import run_ablation_baselines
from repro.io.tables import format_table, write_csv


def test_ablation_baselines_hops(benchmark, bench_context, results_dir):
    results = run_once(
        benchmark, run_ablation_baselines, bench_context, "s1", "hops", 4, 12
    )

    rows = [
        {"model": name, "overall_accuracy": table.overall_average}
        for name, table in sorted(results.items(), key=lambda kv: -kv[1].overall_average)
    ]
    print()
    print(format_table(rows, title="ABL-1 -- forecast accuracy (train hours 1-4, forecast 5-12), s1, hops"))
    write_csv(rows, results_dir / "ablation_baselines_hops.csv")

    dl = results["diffusive_logistic"].overall_average
    logistic = results["per_distance_logistic"].overall_average
    linear = results["linear_influence"].overall_average

    assert dl > 0.6, "the DL model must produce a usable forecast"
    # Competitive with the over-parameterised per-distance baseline.
    assert dl > logistic - 0.15
    # Clearly better than the non-saturating linear-influence baseline.
    assert dl > linear


def test_ablation_baselines_interests(benchmark, bench_context, results_dir):
    results = run_once(
        benchmark, run_ablation_baselines, bench_context, "s1", "interests", 4, 12
    )
    rows = [
        {"model": name, "overall_accuracy": table.overall_average}
        for name, table in sorted(results.items(), key=lambda kv: -kv[1].overall_average)
    ]
    print()
    print(format_table(rows, title="ABL-1 -- forecast accuracy (train hours 1-4, forecast 5-12), s1, interests"))
    write_csv(rows, results_dir / "ablation_baselines_interests.csv")

    for name, table in results.items():
        assert 0.0 <= table.overall_average <= 1.0, name
    assert results["diffusive_logistic"].overall_average > 0.55
