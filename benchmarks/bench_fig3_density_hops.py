"""FIG-3 -- Density of influenced users over 50 hours (friendship hops).

Regenerates Figure 3(a-d): for each representative story, the density of
influenced users at hop distances 1-5 over the 50-hour observation window.
The paper's five qualitative observations are asserted:

1. densities evolve over time (and are non-decreasing);
2. for the most popular story s1, the density at distance 3 exceeds the
   density at distance 2 (the front-page / random-walk channel);
3. the density at distance 1 dominates every other distance;
4. popular stories stabilise sooner than less popular ones;
5. after 50 hours all densities have stabilised.
"""

import numpy as np
from conftest import run_once

from repro.analysis.experiments import run_fig3_density_hops
from repro.analysis.patterns import saturation_time
from repro.analysis.reports import render_density_surface
from repro.io.tables import write_csv


def test_fig3_density_over_time_hops(benchmark, bench_context, results_dir):
    surfaces = run_once(benchmark, run_fig3_density_hops, bench_context)

    rows = []
    print()
    for story, surface in surfaces.items():
        print(render_density_surface(
            surface,
            times=[1.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0],
            title=f"Figure 3 ({story}) -- density over time, hop distance",
        ))
        print()
        for time in surface.times:
            row = {"story": story, "t": float(time)}
            row.update({f"x={d:g}": v for d, v in zip(surface.distances, surface.profile(float(time)))})
            rows.append(row)
    write_csv(rows, results_dir / "fig3_density_hops.csv")

    # Observation 1 + 5: monotone growth, stabilised by the end of the window.
    for story, surface in surfaces.items():
        assert surface.is_monotone_in_time()
        late_growth = surface.values[-1].sum() - surface.profile(45.0).sum()
        assert late_growth < 0.1 * max(surface.values[-1].sum(), 1e-9)

    # Observation 2: s1's distance-3 density exceeds its distance-2 density.
    s1_final = surfaces["s1"].values[-1]
    assert s1_final[2] > s1_final[1]

    # Observation 3: distance 1 dominates for every story.
    for surface in surfaces.values():
        final = surface.values[-1]
        assert final[0] == max(final)

    # Observation 4: the most popular story saturates sooner than the second.
    assert saturation_time(surfaces["s1"], 1.0, 0.9) <= saturation_time(surfaces["s2"], 1.0, 0.9)

    # Scale check: density magnitudes in the same range as the paper (< 25%).
    assert surfaces["s1"].max_density < 30.0
    assert np.all(surfaces["s4"].values[-1][1:] < 5.0)
