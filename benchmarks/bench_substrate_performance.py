"""Substrate performance benchmarks.

Not tied to a paper artifact: these time the building blocks that every
experiment depends on, so regressions in the simulator, the BFS distance
computation, the density extraction or the PDE solver are caught by the
benchmark harness rather than showing up as mysteriously slow experiments.

Besides the pytest-benchmark fixtures, this module doubles as a script that
emits machine-readable JSON timings of the batched solver engine against the
sequential path, so the performance trajectory can be tracked across PRs::

    PYTHONPATH=src python benchmarks/bench_substrate_performance.py --json out.json

The JSON reports sequential vs batched wall time, the speedup, and the
maximum parameter/solution deltas (the batched path must win on time *at
equal accuracy*, not by computing something different).  Three further
dimensions cover the PR-2/PR-3 machinery:

* ``operator`` -- per-step cost of one Crank-Nicolson solve on a fine grid
  (n = 4000) under each operator factorization mode (``dense`` / ``banded`` /
  ``thomas``), with the maximum state delta of each mode against the dense
  reference.
* ``refine`` -- wall time of the calibration refinement stage with batched
  multi-start evaluation vs the sequential per-candidate reference.
* ``service`` -- corpus throughput (stories/sec) of the async prediction
  service vs the sequential per-story predictor loop and the synchronous
  ``BatchPredictor``, at corpus sizes 10/100 (plus 1000 without ``--quick``),
  with the maximum per-story result delta against the synchronous batch
  reference.  The ``service.logistic`` subsection runs the same corpus
  through the model registry's ``logistic`` baseline, asserting the
  model-agnostic serving path matches its direct fit/evaluate loop.  The
  ``service.scaling`` subsection compares the thread and process execution
  backends at 1/2/4/ncpu workers on a calibration-heavy corpus: the process
  backend must stay bit-identical to the thread reference and its 4-vs-1
  worker speedup is gated as a core-count-normalized scaling efficiency.
  The ``service.cluster`` subsection scores the same explicit-parameter
  corpus through the ``cluster`` backend against fleets of 1 and 2
  localhost worker daemons: results must stay bit-identical to the thread
  executor (``max_result_delta_cluster_vs_thread``, gated at 1e-12) and
  the routing overhead is ceiling-gated as ``efficiency_vs_thread``.
* ``daemon`` -- submission round-trip of the JSON-lines daemon (submit over
  a Unix socket, stream every per-story result back) vs the same corpus
  scored through the in-process service, with the result delta against the
  synchronous batch reference (the protocol must add transport, never
  numerics).
* ``corpus.io`` -- the columnar corpus store vs the inline manifest path at
  1k (and, without ``--quick``, 10k) generated stories: open+resolve wall
  time (the store's lazy handles vs parsing every surface out of JSON),
  exact per-story result parity of the two paths, and a bounded-RSS check
  in fresh subprocesses (scoring from the store must fit in a baseline +
  64 MB + corpus-bytes/4 budget -- the "never holds all surfaces in
  memory" criterion).
* ``convergence`` (opt-in via ``--convergence``) -- the spatial-resolution
  study: predicted accuracy and solve time vs ``points_per_unit`` on the
  banded operator stack, against the finest grid as reference.

``benchmarks/check_regression.py`` consumes this JSON and fails CI when a
speedup ratio regresses past 1.3x of the checked-in baseline or any
equivalence delta exceeds its tolerance.
"""

import argparse
import asyncio
import json
import os
import sys
import tempfile
import time

import numpy as np
import pytest

from repro.cascade.density import DensitySurface, compute_density_surface
from repro.cascade.digg import SyntheticDiggConfig, build_synthetic_digg_dataset
from repro.cascade.frontpage import FrontPageModel
from repro.cascade.simulator import CascadeConfig, CascadeSimulator
from repro.core.calibration import calibrate_dl_model_batched
from repro.core.dl_model import DiffusiveLogisticModel, solve_dl_batch
from repro.core.initial_density import InitialDensity
from repro.core.parameters import (
    DLParameters,
    ExponentialDecayGrowthRate,
    PAPER_S1_HOP_PARAMETERS,
)
from repro.core.accuracy import build_accuracy_table
from repro.core.config import ModelSpec, SolverConfig
from repro.core.prediction import BatchPredictor, DiffusionPredictor
from repro.models import get_model
from repro.service import (
    DaemonClient,
    PredictionDaemon,
    PredictionService,
    score_corpus_sync,
)
from repro.network.distance import friendship_hop_distances
from repro.network.generators import DiggLikeGraphConfig, generate_digg_like_graph
from repro.numerics import operator_cache
from repro.numerics.grid import UniformGrid
from repro.numerics.operator_cache import clear_operator_caches
from repro.numerics.pde_solver import ReactionDiffusionProblem, ReactionDiffusionSolver


@pytest.fixture(scope="module")
def perf_graph():
    config = DiggLikeGraphConfig(
        num_users=2000,
        initial_core=8,
        follows_per_user=2,
        reciprocity_probability=0.3,
        triadic_closure_probability=0.15,
        preferential_fraction=0.45,
        recent_window=50,
        seed=99,
    )
    return generate_digg_like_graph(config)


def test_perf_graph_generation(benchmark):
    config = DiggLikeGraphConfig(
        num_users=1500,
        follows_per_user=2,
        preferential_fraction=0.45,
        recent_window=40,
        seed=5,
    )
    graph = benchmark(generate_digg_like_graph, config)
    assert graph.num_users == 1500


def test_perf_cascade_simulation(benchmark, perf_graph):
    config = CascadeConfig(
        follow_hazard=0.05,
        reinforcement=0.4,
        interest_decay=0.3,
        front_page=FrontPageModel(promotion_threshold=3, discovery_rate=40.0, staleness_decay=0.3),
        horizon_hours=50.0,
        time_step=0.25,
    )
    simulator = CascadeSimulator(perf_graph, config)
    hub = max(perf_graph.users(), key=perf_graph.out_degree)

    def run():
        return simulator.simulate(0, hub, np.random.default_rng(1))

    story = benchmark(run)
    assert story.num_votes > 10


def test_perf_hop_distances(benchmark, perf_graph):
    hub = max(perf_graph.users(), key=perf_graph.out_degree)
    distances = benchmark(friendship_hop_distances, perf_graph, hub)
    assert len(distances) > 1000


def test_perf_density_extraction(benchmark, perf_graph):
    config = CascadeConfig(
        follow_hazard=0.05,
        reinforcement=0.4,
        interest_decay=0.3,
        front_page=FrontPageModel(promotion_threshold=3, discovery_rate=40.0, staleness_decay=0.3),
        horizon_hours=50.0,
        time_step=0.25,
    )
    hub = max(perf_graph.users(), key=perf_graph.out_degree)
    story = CascadeSimulator(perf_graph, config).simulate(0, hub, np.random.default_rng(2))
    distances = friendship_hop_distances(perf_graph, hub)
    times = np.arange(1.0, 51.0)
    surface = benchmark(
        compute_density_surface, story, distances, range(1, 6), times
    )
    assert surface.values.shape == (50, 5)


def test_perf_corpus_build(benchmark):
    """Building a small corpus end to end (graph + 4 representative + 10 background cascades).

    A configuration not used anywhere else is chosen so the timing measures a
    genuine build rather than a hit in the library's corpus cache, and the
    build is run exactly once (pedantic) since repeated calls would be cached.
    """
    config = SyntheticDiggConfig(num_users=800, num_background_stories=10, seed=77)
    corpus = benchmark.pedantic(
        build_synthetic_digg_dataset, args=(config,), rounds=1, iterations=1
    )
    assert corpus.dataset.num_stories == 14


def test_perf_dl_solve(benchmark):
    phi = InitialDensity([1, 2, 3, 4, 5], [5.0, 2.0, 2.5, 1.5, 1.0])
    model = DiffusiveLogisticModel(PAPER_S1_HOP_PARAMETERS, points_per_unit=20, max_step=0.02)
    times = [float(t) for t in range(1, 7)]
    solution = benchmark(model.solve, phi, times)
    assert solution.times.size == 6


def test_perf_dl_solve_batch(benchmark):
    """32 parameter candidates advanced as columns of one batched solve."""
    phi = InitialDensity([1, 2, 3, 4, 5], [5.0, 2.0, 2.5, 1.5, 1.0])
    candidates = [
        PAPER_S1_HOP_PARAMETERS.with_diffusion_rate(0.005 + 0.003 * j) for j in range(32)
    ]
    times = [float(t) for t in range(1, 7)]
    solutions = benchmark(
        solve_dl_batch, candidates, phi, times, points_per_unit=20, max_step=0.02
    )
    assert len(solutions) == 32


# ---------------------------------------------------------------------- #
# JSON script mode: sequential vs batched solver engine
# ---------------------------------------------------------------------- #
def _synthetic_calibration_surface(hours: int = 8) -> DensitySurface:
    """A noise-free Digg-like density surface generated by the DL model."""
    phi = InitialDensity([1, 2, 3, 4, 5], [5.0, 2.0, 2.5, 1.5, 1.0])
    parameters = DLParameters(
        diffusion_rate=0.01,
        growth_rate=ExponentialDecayGrowthRate(1.4, 1.5, 0.25),
        carrying_capacity=25.0,
    )
    model = DiffusiveLogisticModel(parameters, points_per_unit=12, max_step=0.02)
    surface = model.predict(phi, [float(t) for t in range(1, hours + 1)])
    return DensitySurface(
        distances=surface.distances,
        times=surface.times,
        values=surface.values,
        group_sizes=np.ones(surface.distances.size),
        metadata={"source": "substrate_benchmark"},
    )


def _parameter_delta(a, b) -> float:
    """Largest absolute difference between two calibrated parameter sets."""
    return max(
        abs(a.parameters.diffusion_rate - b.parameters.diffusion_rate),
        abs(a.parameters.growth_rate.amplitude - b.parameters.growth_rate.amplitude),
        abs(a.parameters.growth_rate.decay - b.parameters.growth_rate.decay),
        abs(a.parameters.growth_rate.floor - b.parameters.growth_rate.floor),
    )


def run_operator_mode_benchmark(num_points: int = 4000, quick: bool = False) -> dict:
    """Per-step cost of the Crank-Nicolson operator modes on a fine grid.

    Solves one DL-style logistic problem on ``num_points`` nodes with each
    factorization mode, timing the stepping loop after a warm-up solve has
    paid the (cached) factorization, and reports the per-step time plus the
    maximum state delta of each mode against the dense-LU reference.
    """
    steps = 5 if quick else 20
    max_step = 0.02
    diffusion = 0.01
    grid = UniformGrid(1.0, 5.0, num_points)
    problem = ReactionDiffusionProblem(
        grid=grid,
        initial_condition=lambda x: 5.0 * np.exp(-((x - 1.0) ** 2)),
        diffusion=diffusion,
        reaction=lambda u, x, t: 0.8 * u * (1.0 - u / 25.0),
        start_time=1.0,
    )
    horizon = 1.0 + steps * max_step

    report = {"num_points": num_points, "max_step": max_step, "steps": steps}
    dense_states = None
    for mode in ("dense", "banded", "thomas"):
        clear_operator_caches()
        solver = ReactionDiffusionSolver(max_step=max_step, operator=mode)
        solver.solve(problem, [1.0 + max_step])  # pay the factorization up front
        start = time.perf_counter()
        solution = solver.solve(problem, [horizon])
        elapsed = time.perf_counter() - start
        steps_taken = int(solution.metadata["steps"])
        factor = operator_cache.crank_nicolson_operator(
            num_points, grid.spacing, max_step, diffusion, mode
        )
        entry = {
            "seconds": elapsed,
            "steps": steps_taken,
            "per_step_seconds": elapsed / steps_taken,
            "factor_nbytes": int(factor.nbytes),
        }
        if mode == "dense":
            dense_states = solution.states
            dense_per_step = entry["per_step_seconds"]
        else:
            entry["speedup_vs_dense"] = dense_per_step / entry["per_step_seconds"]
            entry["max_state_delta_vs_dense"] = float(
                np.max(np.abs(solution.states - dense_states))
            )
        report[mode] = entry
    clear_operator_caches()  # drop the 128 MB dense factor before returning
    return report


def best_of(run, repeats: int = 2) -> "tuple[float, object]":
    """Best wall time (and that run's result) over ``repeats`` cold runs.

    Every repetition starts from cleared operator caches so all paths pay
    factorization equally; the minimum is reported because single-shot
    timings are too noisy for the regression gate's 1.3x band on loaded or
    single-core machines.
    """
    best_seconds, result = float("inf"), None
    for _ in range(repeats):
        clear_operator_caches()
        start = time.perf_counter()
        candidate = run()
        elapsed = time.perf_counter() - start
        if elapsed < best_seconds:
            best_seconds, result = elapsed, candidate
    return best_seconds, result


SERVICE_TRAINING_TIMES = tuple(float(t) for t in range(1, 7))
SERVICE_EVALUATION_TIMES = SERVICE_TRAINING_TIMES[1:]
SERVICE_SOLVER = dict(points_per_unit=12, max_step=0.02)
SERVICE_SOLVER_CONFIG = SolverConfig(**SERVICE_SOLVER)


def _service_corpus(size: int) -> dict:
    """``size`` noise-free DL-generated story surfaces sharing one interval.

    All surfaces are produced by one batched solve (cheap even at 1000
    columns) with per-story phi shapes, the multi-story workload the service
    layer shards and drains.
    """
    rng = np.random.default_rng(20120612)
    phis = [
        InitialDensity([1, 2, 3, 4, 5], list(2.0 + 3.0 * rng.random(5)))
        for _ in range(size)
    ]
    solutions = solve_dl_batch(
        PAPER_S1_HOP_PARAMETERS, phis, list(SERVICE_TRAINING_TIMES), **SERVICE_SOLVER
    )
    corpus = {}
    for index, solution in enumerate(solutions):
        surface = solution.to_surface()
        corpus[f"story{index:04d}"] = DensitySurface(
            distances=surface.distances,
            times=surface.times,
            values=surface.values,
            group_sizes=np.ones(surface.distances.size),
            metadata={"source": "substrate_benchmark_service"},
        )
    return corpus


def run_service_benchmark(quick: bool = False) -> dict:
    """Corpus throughput of the async service vs the synchronous paths.

    For each corpus size, three runs score the *same* stories with the
    *same* (explicit) parameters, so the timing isolates the serving
    machinery rather than calibration:

    * ``sequential`` -- one :class:`DiffusionPredictor` fit/evaluate per
      story, the pre-batching reference loop.
    * ``batch`` -- one synchronous :class:`BatchPredictor` over the whole
      corpus, the correctness reference the service must match bit for bit.
    * ``service`` -- :func:`repro.service.score_corpus_sync`: sharded async
      job queue with a bounded thread worker pool.

    The headline ``speedup`` is service-vs-sequential at corpus size 100
    (the acceptance criterion); ``max_result_delta_vs_batch`` is the largest
    per-story difference in predicted densities against the batch reference.
    """
    sizes = (10, 100) if quick else (10, 100, 1000)
    parameters = PAPER_S1_HOP_PARAMETERS
    training = list(SERVICE_TRAINING_TIMES)
    evaluation = list(SERVICE_EVALUATION_TIMES)
    full_corpus = _service_corpus(max(sizes))
    names = list(full_corpus)

    report = {"sizes": {}, "corpus_size": 100 if 100 in sizes else max(sizes)}
    max_delta_vs_batch = 0.0
    for size in sizes:
        corpus = {name: full_corpus[name] for name in names[:size]}
        # The 1000-story corpus is timed once (its sequential loop alone is
        # ~30s); the gated headline sizes get best-of-3.
        repeats = 3 if size <= 100 else 1

        def run_sequential():
            results = {}
            for name, surface in corpus.items():
                predictor = DiffusionPredictor(
                    parameters=parameters, solver=SERVICE_SOLVER_CONFIG
                ).fit(surface, training_times=training)
                results[name] = predictor.evaluate(surface, times=evaluation)
            return results

        def run_batch():
            return (
                BatchPredictor(parameters=parameters, solver=SERVICE_SOLVER_CONFIG)
                .fit(corpus, training_times=training)
                .evaluate(corpus, times=evaluation)
            )

        def run_service():
            return score_corpus_sync(
                corpus,
                training_times=training,
                evaluation_times=evaluation,
                parameters=parameters,
                solver=SERVICE_SOLVER_CONFIG,
            )

        sequential_seconds, sequential = best_of(run_sequential, repeats)
        batch_seconds, batch_results = best_of(run_batch, repeats)
        service_seconds, service_results = best_of(run_service, repeats)

        delta_vs_batch = max(
            float(
                np.max(
                    np.abs(
                        service_results[name].predicted.values
                        - batch_results[name].predicted.values
                    )
                )
            )
            for name in corpus
        )
        delta_vs_sequential = max(
            float(
                np.max(
                    np.abs(
                        service_results[name].predicted.values
                        - sequential[name].predicted.values
                    )
                )
            )
            for name in corpus
        )
        max_delta_vs_batch = max(max_delta_vs_batch, delta_vs_batch)
        entry = {
            "stories": size,
            "sequential_seconds": sequential_seconds,
            "batch_seconds": batch_seconds,
            "service_seconds": service_seconds,
            "stories_per_second_sequential": size / sequential_seconds,
            "stories_per_second_service": size / service_seconds,
            "speedup_vs_sequential": sequential_seconds / service_seconds,
            "speedup_vs_batch": batch_seconds / service_seconds,
            "max_result_delta_vs_batch": delta_vs_batch,
            "max_result_delta_vs_sequential": delta_vs_sequential,
        }
        report["sizes"][str(size)] = entry
        if size == report["corpus_size"]:
            report["speedup"] = entry["speedup_vs_sequential"]
            report["stories_per_second"] = entry["stories_per_second_service"]
    report["max_result_delta_vs_batch"] = max_delta_vs_batch
    return report


def run_service_model_benchmark(model: str = "logistic", quick: bool = False) -> dict:
    """A registry baseline through the service vs its direct synchronous path.

    The model-agnostic serving criterion: scoring a corpus with a non-DL
    registered model through the async service must (a) return results
    bit-identical to the model's direct ``fit`` + ``evaluate`` loop and
    (b) not be catastrophically slower than that loop (the baselines have
    no batched solve to amortize, so the service only adds scheduling --
    the floor in ``check_regression.py`` is deliberately loose).
    """
    size = 20 if quick else 50
    training = list(SERVICE_TRAINING_TIMES)
    evaluation = list(SERVICE_EVALUATION_TIMES)
    corpus = _service_corpus(size)
    spec = ModelSpec(name=model, solver=SolverConfig(**SERVICE_SOLVER))

    def run_direct():
        fitter = get_model(model).batch_fitter(spec)
        for name, surface in corpus.items():
            fitter.fit_story(name, surface, training)
        return fitter.evaluate(corpus, times=evaluation)

    def run_service():
        return score_corpus_sync(
            corpus,
            training_times=training,
            evaluation_times=evaluation,
            model=model,
            solver=SERVICE_SOLVER_CONFIG,
        )

    direct_seconds, direct_results = best_of(run_direct)
    service_seconds, service_results = best_of(run_service)
    max_delta = max(
        float(
            np.max(
                np.abs(
                    service_results[name].predicted.values
                    - direct_results[name].predicted.values
                )
            )
        )
        for name in corpus
    )
    return {
        "model": model,
        "stories": size,
        "direct_seconds": direct_seconds,
        "service_seconds": service_seconds,
        "speedup_vs_direct": direct_seconds / service_seconds,
        "max_result_delta_vs_direct": max_delta,
    }


def run_service_scaling_benchmark(quick: bool = False) -> dict:
    """Worker scaling of the thread vs process execution backends.

    Scores one calibration-heavy corpus (no explicit parameters, so every
    story runs the full grid-then-refine DL calibration -- pure Python +
    small-matrix NumPy, the workload the GIL serializes) through the
    service once per (backend, workers) configuration.  ``max_shard_size=1``
    pins shard composition, so every configuration solves the *same* shards
    and the process backend's results can be checked bit-for-bit against
    the thread reference (``max_result_delta_process_vs_thread``, gated at
    1e-12).

    The headline is ``process.speedup_4v1`` -- process-backend throughput
    at 4 workers over 1 worker.  Because CI runners differ in core count,
    the gated number is ``process.scaling_efficiency`` =
    ``speedup_4v1 / min(4, cpus)``: on a >=4-core machine the 0.625 floor
    in ``check_regression.py`` demands a >=2.5x speedup; on smaller boxes
    it degrades to "adding workers must not make things slower than the
    core count allows".
    """
    size = 4 if quick else 8
    training = list(SERVICE_TRAINING_TIMES)
    evaluation = list(SERVICE_EVALUATION_TIMES)
    corpus = _service_corpus(size)
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cpus = os.cpu_count() or 1
    worker_counts = sorted({1, 2, 4, min(cpus, 16)})

    def run_config(executor: str, workers: int) -> "tuple[float, dict]":
        clear_operator_caches()
        start = time.perf_counter()
        results = score_corpus_sync(
            corpus,
            training_times=training,
            evaluation_times=evaluation,
            max_workers=workers,
            max_shard_size=1,
            executor=executor,
            solver=SERVICE_SOLVER_CONFIG,
        )
        return time.perf_counter() - start, results

    report = {
        "stories": size,
        "cpus": cpus,
        "max_shard_size": 1,
        "worker_counts": list(worker_counts),
        "thread": {"workers": {}},
        "process": {"workers": {}},
    }
    reference = None
    max_delta = 0.0
    for executor in ("thread", "process"):
        for workers in worker_counts:
            seconds, results = run_config(executor, workers)
            report[executor]["workers"][str(workers)] = {
                "seconds": seconds,
                "stories_per_second": size / seconds,
            }
            if executor == "thread" and workers == 1:
                reference = results
            elif executor == "process":
                delta = max(
                    float(
                        np.max(
                            np.abs(
                                results[name].predicted.values
                                - reference[name].predicted.values
                            )
                        )
                    )
                    for name in corpus
                )
                max_delta = max(max_delta, delta)
    for executor in ("thread", "process"):
        timings = report[executor]["workers"]
        speedup = timings["1"]["seconds"] / timings["4"]["seconds"]
        report[executor]["speedup_4v1"] = speedup
        report[executor]["scaling_efficiency"] = speedup / min(4, cpus)
    report["max_result_delta_process_vs_thread"] = max_delta
    return report


def run_service_cluster_benchmark(quick: bool = False) -> dict:
    """Routing overhead and result parity of the cluster backend.

    The same explicit-parameter corpus is scored through the in-process
    thread executor (the reference) and through the ``cluster`` backend
    against fleets of 1 and 2 worker daemons served on localhost TCP in
    this process's event loop.  ``max_shard_size=1`` pins shard
    composition, so every configuration solves the same shards and the
    cluster results can be checked bit-for-bit against the thread
    reference (``max_result_delta_cluster_vs_thread``, gated at 1e-12 by
    ``check_regression.py``).

    The cluster adds pickling, base64 framing and a socket round-trip per
    shard on top of the thread path -- with the workers sharing the
    router's cores, it can only *cost* time here, so the gated number is
    a floor on ``efficiency_vs_thread`` (thread seconds / 2-worker fleet
    seconds): a ceiling on routing overhead, deliberately loose because
    the corpus is small and the overhead per shard is fixed.
    """
    size = 6 if quick else 12
    repeats = 2
    parameters = PAPER_S1_HOP_PARAMETERS
    training = list(SERVICE_TRAINING_TIMES)
    evaluation = list(SERVICE_EVALUATION_TIMES)
    corpus = _service_corpus(size)

    def run_thread():
        return score_corpus_sync(
            corpus,
            training_times=training,
            evaluation_times=evaluation,
            parameters=parameters,
            solver=SERVICE_SOLVER_CONFIG,
            max_workers=2,
            max_shard_size=1,
        )

    thread_seconds, thread_results = best_of(run_thread, repeats)

    async def cluster_run(fleet_size: int) -> "tuple[float, dict]":
        workers, tasks = [], []
        try:
            for _ in range(fleet_size):
                worker = PredictionDaemon(max_workers=2)
                tasks.append(
                    asyncio.ensure_future(worker.serve_tcp("127.0.0.1", 0))
                )
                while worker.listener is None or worker.listener.address.port in (
                    None,
                    0,
                ):
                    await asyncio.sleep(0.005)
                workers.append(worker)
            addresses = [str(worker.listener.address) for worker in workers]
            async with PredictionService(
                parameters=parameters,
                solver=SERVICE_SOLVER_CONFIG,
                max_workers=2,
                max_shard_size=1,
                executor="cluster",
                executor_options={"workers": addresses},
            ) as service:
                start = time.perf_counter()
                results = await service.score_corpus(corpus, training, evaluation)
                elapsed = time.perf_counter() - start
            return elapsed, results
        finally:
            for worker in workers:
                worker.stop_event.set()
            await asyncio.gather(*tasks, return_exceptions=True)

    report: dict = {
        "stories": size,
        "max_shard_size": 1,
        "thread_seconds": thread_seconds,
        "fleets": {},
    }
    max_delta = 0.0
    for fleet_size in (1, 2):
        best_seconds, best_results = float("inf"), None
        for _ in range(repeats):
            clear_operator_caches()
            elapsed, results = asyncio.run(cluster_run(fleet_size))
            if elapsed < best_seconds:
                best_seconds, best_results = elapsed, results
        delta = max(
            float(
                np.max(
                    np.abs(
                        best_results[name].predicted.values
                        - thread_results[name].predicted.values
                    )
                )
            )
            for name in corpus
        )
        max_delta = max(max_delta, delta)
        report["fleets"][str(fleet_size)] = {
            "workers": fleet_size,
            "seconds": best_seconds,
            "stories_per_second": size / best_seconds,
            "efficiency_vs_thread": thread_seconds / best_seconds,
            "max_result_delta_vs_thread": delta,
        }
    report["efficiency_vs_thread"] = report["fleets"]["2"]["efficiency_vs_thread"]
    report["routing_overhead_seconds"] = (
        report["fleets"]["2"]["seconds"] - thread_seconds
    )
    report["per_story_overhead_seconds"] = (
        report["routing_overhead_seconds"] / size
    )
    report["max_result_delta_cluster_vs_thread"] = max_delta
    return report


def _daemon_manifest(corpus: dict) -> dict:
    """Serialize a corpus of surfaces as an inline-story manifest document."""
    return {
        "hours": len(SERVICE_TRAINING_TIMES),
        "stories": [
            {
                "name": name,
                "distances": surface.distances.tolist(),
                "times": surface.times.tolist(),
                "values": surface.values.tolist(),
            }
            for name, surface in corpus.items()
        ],
    }


def run_tracing_benchmark(quick: bool = False) -> dict:
    """Zero-cost-when-disabled gate for the tracing instrumentation.

    Every hot-path instrumentation site guards on ``tracer.enabled``
    before building attribute dicts or spans, so a daemon without
    ``--trace`` pays one attribute check per site per story.  The gate
    multiplies the measured per-site cost of the no-op tracer by a
    conservative per-story site count and divides by the service's
    measured per-story solve time: ``noop_overhead_fraction`` must stay
    under 2% (CORRECTNESS_CHECKS in check_regression.py).  Deriving the
    fraction from the deterministic microbenchmark instead of an A/B of
    two full service runs keeps the gate far below timer noise -- the
    per-site check costs tens of nanoseconds against multi-millisecond
    story solves.  ``enabled_span_call_seconds`` (a live tracer's
    open+finish cost) is reported alongside for scale, ungated.
    """
    from repro.service.tracing import NOOP_TRACER, Tracer

    calls = 20_000 if quick else 200_000

    def per_call(tracer) -> float:
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(calls):
                # The exact hot-site pattern: guard, then open and finish.
                if tracer.enabled:
                    tracer.span("bench", attributes={"stories": 1}).finish()
            best = min(best, (time.perf_counter() - start) / calls)
        return best

    noop_call = per_call(NOOP_TRACER)
    enabled_call = per_call(Tracer(capacity=1024))

    corpus_size = 10 if quick else 50
    corpus = _service_corpus(corpus_size)
    service_seconds, _ = best_of(
        lambda: score_corpus_sync(
            corpus,
            training_times=list(SERVICE_TRAINING_TIMES),
            evaluation_times=list(SERVICE_EVALUATION_TIMES),
            parameters=PAPER_S1_HOP_PARAMETERS,
            solver=SERVICE_SOLVER_CONFIG,
        )
    )
    per_story = service_seconds / corpus_size
    # Upper bound on guarded sites one story passes through: story submit,
    # queue wait, shard solve, fit, per-story fit, two calibration phases,
    # evaluate, result emission -- nine, padded to ten.
    span_sites_per_story = 10
    return {
        "calls": calls,
        "noop_span_call_seconds": noop_call,
        "enabled_span_call_seconds": enabled_call,
        "span_sites_per_story": span_sites_per_story,
        "corpus_size": corpus_size,
        "service_seconds_per_story": per_story,
        "noop_overhead_fraction": span_sites_per_story * noop_call / per_story,
    }


def run_daemon_benchmark(quick: bool = False) -> dict:
    """Submission round-trip of the daemon protocol vs the in-process service.

    The same corpus is scored twice with the same explicit parameters:

    * ``inprocess`` -- :func:`repro.service.score_corpus_sync`, the direct
      library path (service startup + solve, no transport).
    * ``daemon`` -- a :class:`~repro.service.daemon.PredictionDaemon` serving
      a Unix socket in this process; the measured round-trip spans sending
      the ``submit`` request to receiving the final ``job`` event, so it
      prices manifest JSON encoding, protocol framing, event streaming and
      scheduling -- everything the daemon adds on top of the service.

    ``efficiency_vs_inprocess`` (in-process seconds / round-trip seconds,
    ~1.0 when the protocol overhead vanishes against solve time) is
    floor-gated by ``check_regression.py``; ``max_result_delta_vs_batch``
    compares every streamed accuracy and parameter against the synchronous
    :class:`BatchPredictor`, and must be bit-identical (the events carry
    JSON floats, which round-trip exactly).
    """
    size = 8 if quick else 20
    repeats = 2
    parameters = PAPER_S1_HOP_PARAMETERS
    training = list(SERVICE_TRAINING_TIMES)
    evaluation = list(SERVICE_EVALUATION_TIMES)
    corpus = _service_corpus(size)
    manifest = _daemon_manifest(corpus)

    inprocess_seconds, _ = best_of(
        lambda: score_corpus_sync(
            corpus,
            training_times=training,
            evaluation_times=evaluation,
            parameters=parameters,
            solver=SERVICE_SOLVER_CONFIG,
        ),
        repeats,
    )

    async def daemon_roundtrip() -> "tuple[float, dict]":
        with tempfile.TemporaryDirectory() as tmpdir:
            socket_path = os.path.join(tmpdir, "bench.sock")
            daemon = PredictionDaemon(
                parameters=parameters, solver=SERVICE_SOLVER_CONFIG
            )
            server = asyncio.ensure_future(daemon.serve_unix(socket_path))
            while not os.path.exists(socket_path):
                await asyncio.sleep(0.005)
            results = {}
            async with await DaemonClient.connect_unix(socket_path) as client:
                start = time.perf_counter()
                async for event in client.submit(manifest):
                    if event.get("event") == "error":
                        raise RuntimeError(f"daemon error: {event['error']}")
                    if event.get("event") == "result":
                        results[event["story"]] = event
                elapsed = time.perf_counter() - start
                await client.shutdown()
            await server
            return elapsed, results

    roundtrip_seconds, daemon_results = float("inf"), None
    for _ in range(repeats):
        clear_operator_caches()
        elapsed, results = asyncio.run(daemon_roundtrip())
        if elapsed < roundtrip_seconds:
            roundtrip_seconds, daemon_results = elapsed, results

    batch_results = (
        BatchPredictor(parameters=parameters, solver=SERVICE_SOLVER_CONFIG)
        .fit(corpus, training_times=training)
        .evaluate(corpus, times=evaluation)
    )
    max_delta = 0.0
    for name in corpus:
        streamed = daemon_results[name]
        assert streamed["status"] == "succeeded", streamed
        reference = batch_results[name]
        deltas = [
            abs(streamed["overall_accuracy"] - reference.overall_accuracy),
            abs(
                streamed["parameters"]["d"] - reference.parameters.diffusion_rate
            ),
            abs(
                streamed["parameters"]["K"]
                - reference.parameters.carrying_capacity
            ),
        ]
        deltas.extend(
            abs(streamed["accuracy_by_distance"][str(d)] - reference.accuracy_at_distance(d))
            for d in reference.predicted.distances
        )
        max_delta = max(max_delta, *deltas)

    return {
        "stories": size,
        "inprocess_seconds": inprocess_seconds,
        "roundtrip_seconds": roundtrip_seconds,
        "overhead_seconds": roundtrip_seconds - inprocess_seconds,
        "per_story_overhead_seconds": (roundtrip_seconds - inprocess_seconds) / size,
        "efficiency_vs_inprocess": inprocess_seconds / roundtrip_seconds,
        "max_result_delta_vs_batch": max_delta,
    }


CORPUS_IO_SOLVER = SolverConfig(points_per_unit=4, max_step=0.25)

#: The RSS-measurement child: open a corpus (store directory or inline
#: manifest), resolve it, optionally score it in 512-story chunks keeping
#: only accuracy floats (the streaming-consumer pattern the store exists
#: for), and report the process's peak RSS.  Run as a fresh subprocess so
#: ``ru_maxrss`` -- which is monotone over a process's lifetime -- is not
#: inflated by the parent's earlier benchmark sections.
_CORPUS_RSS_CHILD = """
import json, resource, sys

from repro.core.config import SolverConfig
from repro.core.parameters import PAPER_S1_HOP_PARAMETERS
from repro.service import open_corpus, score_corpus_sync

path, mode = sys.argv[1], sys.argv[2]
training = [float(t) for t in range(1, 7)]
resolved = open_corpus(path).resolve(training_times=training)
names = list(resolved.surfaces)
scored = 0
if mode == "score":
    for start in range(0, len(names), 512):
        chunk = {name: resolved.surfaces[name] for name in names[start : start + 512]}
        results = score_corpus_sync(
            chunk,
            training_times=training,
            evaluation_times=training[1:],
            parameters=PAPER_S1_HOP_PARAMETERS,
            solver=SolverConfig(points_per_unit=4, max_step=0.25),
        )
        scored += sum(1 for r in results.values() if r.overall_accuracy is not None)
print(json.dumps({
    "stories": len(names),
    "scored": scored,
    "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


def _corpus_rss_child(path: str, mode: str) -> dict:
    """Run the RSS child against ``path`` and return its JSON report."""
    import subprocess

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", _CORPUS_RSS_CHILD, path, mode],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(completed.stdout)


def run_corpus_io_benchmark(quick: bool = False) -> dict:
    """Corpus store vs inline manifest: load time, result parity, bounded RSS.

    For each corpus size, a seeded synthetic workload is generated straight
    into a corpus store (:func:`repro.corpus.generate_store`), exported to
    the equivalent inline manifest (JSON floats round-trip exactly), and
    both are opened through :func:`repro.service.open_corpus`:

    * ``load`` -- wall time of open+resolve for each path.  The store hands
      back lazy handles (axes from the index, one memory-mapped row for the
      empty-anchor check), the inline path parses every surface out of
      JSON; ``load_speedup_vs_inline`` is floor-gated at the largest size.
    * ``score`` -- both resolved corpora scored through
      :func:`score_corpus_sync` with the paper's explicit S1 parameters;
      ``max_result_delta_vs_inline`` is the largest per-story difference in
      predicted densities and must be exactly 0 (the store is float64
      lossless, so lazy-loading must not change a single bit).
    * ``rss`` -- at the largest size, two fresh subprocesses measure peak
      RSS: a baseline child that only opens and resolves the store, and a
      scoring child that streams the whole corpus through the service in
      512-story chunks.  ``rss_budget_excess_bytes`` is the scoring child's
      RSS over baseline minus a budget of 64 MB + a quarter of the corpus's
      surface bytes -- gated at <= 0, the "never holds all surfaces in
      memory" acceptance criterion.
    """
    from repro.corpus import WorkloadConfig, export_inline_manifest, generate_store
    from repro.service import open_corpus

    sizes = (1000,) if quick else (1000, 10000)
    training = list(SERVICE_TRAINING_TIMES)
    evaluation = list(SERVICE_EVALUATION_TIMES)
    report = {"sizes": {}, "solver": CORPUS_IO_SOLVER.to_json_dict()}
    max_delta = 0.0

    with tempfile.TemporaryDirectory() as tmpdir:
        for size in sizes:
            store_dir = os.path.join(tmpdir, f"store-{size}")
            inline_path = os.path.join(tmpdir, f"inline-{size}.json")
            config = WorkloadConfig(stories=size)
            build_start = time.perf_counter()
            store = generate_store(config, store_dir)
            build_seconds = time.perf_counter() - build_start
            with open(inline_path, "w", encoding="utf-8") as handle:
                json.dump(export_inline_manifest(store), handle)

            def load(path):
                return open_corpus(path).resolve(training_times=training)

            inline_load_seconds, inline_resolved = best_of(
                lambda: load(inline_path), repeats=2
            )
            store_load_seconds, store_resolved = best_of(
                lambda: load(store_dir), repeats=2
            )

            def score(resolved):
                return score_corpus_sync(
                    resolved.surfaces,
                    training_times=training,
                    evaluation_times=evaluation,
                    parameters=PAPER_S1_HOP_PARAMETERS,
                    solver=CORPUS_IO_SOLVER,
                )

            inline_score_seconds, inline_results = best_of(
                lambda: score(inline_resolved), repeats=1
            )
            store_score_seconds, store_results = best_of(
                lambda: score(store_resolved), repeats=1
            )
            delta = max(
                float(
                    np.max(
                        np.abs(
                            store_results[name].predicted.values
                            - inline_results[name].predicted.values
                        )
                    )
                )
                for name in store_results
            )
            max_delta = max(max_delta, delta)
            entry = {
                "stories": size,
                "build_seconds": build_seconds,
                "surface_mbytes": store.total_surface_nbytes / 1e6,
                "inline_load_seconds": inline_load_seconds,
                "store_load_seconds": store_load_seconds,
                "load_speedup_vs_inline": inline_load_seconds / store_load_seconds,
                "inline_score_seconds": inline_score_seconds,
                "store_score_seconds": store_score_seconds,
                "max_result_delta_vs_inline": delta,
            }
            report["sizes"][str(size)] = entry
            if size == max(sizes):
                report["load_speedup_vs_inline"] = entry["load_speedup_vs_inline"]
                baseline = _corpus_rss_child(store_dir, "resolve")
                scoring = _corpus_rss_child(store_dir, "score")
                assert scoring["scored"] == size, scoring
                budget_bytes = 64 * 1024 * 1024 + store.total_surface_nbytes // 4
                excess = (
                    (scoring["ru_maxrss_kb"] - baseline["ru_maxrss_kb"]) * 1024
                    - budget_bytes
                )
                report["rss"] = {
                    "stories": size,
                    "baseline_rss_kb": baseline["ru_maxrss_kb"],
                    "scoring_rss_kb": scoring["ru_maxrss_kb"],
                    "budget_bytes": budget_bytes,
                }
                report["rss_budget_excess_bytes"] = float(excess)
    report["max_result_delta_vs_inline"] = max_delta
    return report


def run_convergence_benchmark(quick: bool = False) -> dict:
    """Resolution-convergence study: accuracy vs ``points_per_unit``.

    Solves one DL problem with the paper's S1 parameters on the banded
    operator stack at increasing spatial resolutions and scores each
    solution against the finest grid (the reference) with the paper's
    accuracy metric -- the ROADMAP's "predicted accuracy vs
    points_per_unit" artifact.  Also reports each resolution's wall time
    and maximum pointwise delta, so the accuracy/cost trade-off is visible
    in one table.
    """
    sweep_ppus = (4, 8, 16) if quick else (4, 8, 16, 32)
    reference_ppu = 32 if quick else 64
    max_step = 0.02
    phi = InitialDensity([1, 2, 3, 4, 5], [5.0, 2.0, 2.5, 1.5, 1.0])
    times = [float(t) for t in range(1, 7)]
    scored_times = times[1:]

    def predict(points_per_unit: int) -> "tuple[float, DensitySurface]":
        clear_operator_caches()
        model = DiffusiveLogisticModel(
            PAPER_S1_HOP_PARAMETERS,
            points_per_unit=points_per_unit,
            max_step=max_step,
            operator="banded",
        )
        start = time.perf_counter()
        surface = model.predict(phi, times)
        return time.perf_counter() - start, surface

    reference_seconds, reference = predict(reference_ppu)
    report = {
        "reference_points_per_unit": reference_ppu,
        "reference_seconds": reference_seconds,
        "max_step": max_step,
        "operator": "banded",
        "sweep": {},
    }
    for ppu in sweep_ppus:
        seconds, surface = predict(ppu)
        accuracy = build_accuracy_table(
            surface, reference, times=scored_times
        ).overall_average
        report["sweep"][str(ppu)] = {
            "points_per_unit": ppu,
            "seconds": seconds,
            "accuracy_vs_reference": accuracy,
            "max_delta_vs_reference": float(
                np.max(np.abs(surface.values - reference.values))
            ),
        }
    return report


def run_batched_solver_benchmark(quick: bool = False) -> dict:
    """Time the batched solver engine against the sequential path.

    Five comparisons are reported:

    * ``calibration`` -- the grid-then-refine calibration with every grid
      candidate evaluated in batched solves vs candidate-by-candidate
      sequential solves (identical algorithm, so the parameter deltas double
      as an accuracy check).
    * ``refine`` -- the multi-start refinement stage alone, batched vs
      sequential residual/Jacobian evaluation (extracted from the
      calibration runs' diagnostics).
    * ``solver`` -- one batched forward solve of N parameter candidates vs N
      sequential solves of the same candidates.
    * ``operator`` -- dense vs banded vs Thomas factorizations of the
      Crank-Nicolson operator at n = 4000 (see
      :func:`run_operator_mode_benchmark`).
    * ``service`` -- corpus throughput of the async prediction service vs
      the sequential per-story loop and the synchronous batch path (see
      :func:`run_service_benchmark`).
    """
    surface = _synthetic_calibration_surface()
    grids = (
        dict(amplitude_grid=(1.0, 1.5), decay_grid=(1.0, 1.5), floor_grid=(0.1, 0.25))
        if quick
        else {}
    )

    sequential_seconds, sequential = best_of(
        lambda: calibrate_dl_model_batched(surface, engine="sequential", **grids)
    )
    batched_seconds, batched = best_of(
        lambda: calibrate_dl_model_batched(surface, engine="batched", **grids)
    )

    phi = InitialDensity.from_surface(surface)
    batch_size = 8 if quick else 32
    candidates = [
        PAPER_S1_HOP_PARAMETERS.with_diffusion_rate(0.005 + 0.003 * j)
        for j in range(batch_size)
    ]
    times = [float(t) for t in range(1, 7)]

    solver_sequential_seconds, solo = best_of(
        lambda: [
            DiffusiveLogisticModel(c, points_per_unit=12, max_step=0.02).solve(phi, times)
            for c in candidates
        ]
    )
    solver_batched_seconds, together = best_of(
        lambda: solve_dl_batch(candidates, phi, times, points_per_unit=12, max_step=0.02)
    )

    max_state_delta = max(
        float(np.max(np.abs(a.pde_solution.states - b.pde_solution.states)))
        for a, b in zip(solo, together)
    )

    refine_sequential = sequential.details["refinement"]
    refine_batched = batched.details["refinement"]
    # Per-start equivalence of the refinement stage itself: every start's
    # final (amplitude, decay, floor) must match between the two engines,
    # not just the overall winner's.
    refine_parameter_delta = float(
        np.max(
            np.abs(
                np.asarray(refine_sequential["start_parameters"])
                - np.asarray(refine_batched["start_parameters"])
            )
        )
    )

    return {
        "benchmark": "substrate_batched_solver",
        "timestamp": time.time(),
        "quick": quick,
        "calibration": {
            "candidates": sequential.details["candidates_evaluated"],
            "sequential_seconds": sequential_seconds,
            "batched_seconds": batched_seconds,
            "speedup": sequential_seconds / batched_seconds,
            "max_parameter_delta": _parameter_delta(sequential, batched),
            "loss_delta": abs(sequential.loss - batched.loss),
        },
        "refine": {
            "starts": refine_batched["starts"],
            "iterations": refine_batched["iterations"],
            "n_evaluations": refine_batched["n_evaluations"],
            "sequential_seconds": refine_sequential["seconds"],
            "batched_seconds": refine_batched["seconds"],
            "speedup": refine_sequential["seconds"] / refine_batched["seconds"],
            "max_parameter_delta": refine_parameter_delta,
        },
        "solver": {
            "batch_size": batch_size,
            "sequential_seconds": solver_sequential_seconds,
            "batched_seconds": solver_batched_seconds,
            "speedup": solver_sequential_seconds / solver_batched_seconds,
            "max_state_delta": max_state_delta,
        },
        "operator": run_operator_mode_benchmark(quick=quick),
        "service": {
            **run_service_benchmark(quick=quick),
            # The model-registry path: the logistic baseline served through
            # the same queue (loosely floor-gated, delta-gated at 0).
            "logistic": run_service_model_benchmark("logistic", quick=quick),
            # Thread vs process execution backends at 1/2/4/ncpu workers on
            # a calibration-heavy corpus (delta- and efficiency-gated).
            "scaling": run_service_scaling_benchmark(quick=quick),
            # The cluster backend against 1/2 localhost worker daemons
            # (delta-gated at 1e-12, routing overhead ceiling-gated).
            "cluster": run_service_cluster_benchmark(quick=quick),
        },
        "daemon": run_daemon_benchmark(quick=quick),
        # Zero-cost-when-disabled proof for the tracing instrumentation
        # (noop_overhead_fraction correctness-gated at 2%).
        "tracing": run_tracing_benchmark(quick=quick),
        "corpus": {
            # Store vs inline manifest: load speedup (floor-gated), exact
            # result parity and the bounded-RSS budget (both delta-gated).
            "io": run_corpus_io_benchmark(quick=quick),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Emit machine-readable JSON timings of sequential vs batched solves."
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default="-",
        help="where to write the JSON report ('-' for stdout, the default)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller candidate grids / batch sizes (for CI smoke runs)",
    )
    parser.add_argument(
        "--convergence",
        action="store_true",
        help=(
            "also run the resolution-convergence study (accuracy vs "
            "points_per_unit on the banded stack) and emit it as the "
            "report's 'convergence' section"
        ),
    )
    args = parser.parse_args(argv)

    report = run_batched_solver_benchmark(quick=args.quick)
    if args.convergence:
        report["convergence"] = run_convergence_benchmark(quick=args.quick)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.json == "-":
        print(text)
    else:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        calibration = report["calibration"]
        operator = report["operator"]
        service = report["service"]
        print(
            f"wrote {args.json}: calibration speedup "
            f"{calibration['speedup']:.1f}x over {calibration['candidates']} candidates "
            f"(max parameter delta {calibration['max_parameter_delta']:.2e}); "
            f"banded operator {operator['banded']['speedup_vs_dense']:.1f}x dense at "
            f"n={operator['num_points']} "
            f"(max state delta {operator['banded']['max_state_delta_vs_dense']:.2e}); "
            f"service {service['speedup']:.1f}x sequential at "
            f"{service['corpus_size']} stories "
            f"({service['stories_per_second']:.1f} stories/s, max result delta "
            f"{service['max_result_delta_vs_batch']:.2e}); "
            f"daemon round-trip {report['daemon']['efficiency_vs_inprocess']:.2f}x "
            f"in-process at {report['daemon']['stories']} stories "
            f"(max result delta {report['daemon']['max_result_delta_vs_batch']:.2e}); "
            f"process backend {service['scaling']['process']['speedup_4v1']:.2f}x "
            f"at 4 workers on {service['scaling']['cpus']} cpus "
            f"(max delta vs thread "
            f"{service['scaling']['max_result_delta_process_vs_thread']:.2e}); "
            f"cluster backend {service['cluster']['efficiency_vs_thread']:.2f}x "
            f"thread at 2 workers "
            f"(max delta vs thread "
            f"{service['cluster']['max_result_delta_cluster_vs_thread']:.2e}); "
            f"corpus store load {report['corpus']['io']['load_speedup_vs_inline']:.1f}x "
            f"inline (max result delta "
            f"{report['corpus']['io']['max_result_delta_vs_inline']:.2e}, "
            f"RSS budget excess "
            f"{report['corpus']['io']['rss_budget_excess_bytes'] / 1e6:.1f} MB); "
            f"tracing no-op overhead "
            f"{report['tracing']['noop_overhead_fraction'] * 100:.4f}% per story",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
