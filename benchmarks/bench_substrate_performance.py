"""Substrate performance benchmarks.

Not tied to a paper artifact: these time the building blocks that every
experiment depends on, so regressions in the simulator, the BFS distance
computation, the density extraction or the PDE solver are caught by the
benchmark harness rather than showing up as mysteriously slow experiments.

Besides the pytest-benchmark fixtures, this module doubles as a script that
emits machine-readable JSON timings of the batched solver engine against the
sequential path, so the performance trajectory can be tracked across PRs::

    PYTHONPATH=src python benchmarks/bench_substrate_performance.py --json out.json

The JSON reports sequential vs batched wall time, the speedup, and the
maximum parameter/solution deltas (the batched path must win on time *at
equal accuracy*, not by computing something different).  Two further
dimensions cover this PR-2 machinery:

* ``operator`` -- per-step cost of one Crank-Nicolson solve on a fine grid
  (n = 4000) under each operator factorization mode (``dense`` / ``banded`` /
  ``thomas``), with the maximum state delta of each mode against the dense
  reference.
* ``refine`` -- wall time of the calibration refinement stage with batched
  multi-start evaluation vs the sequential per-candidate reference.

``benchmarks/check_regression.py`` consumes this JSON and fails CI when a
speedup ratio regresses past 1.3x of the checked-in baseline or any
equivalence delta exceeds its tolerance.
"""

import argparse
import json
import sys
import time

import numpy as np
import pytest

from repro.cascade.density import DensitySurface, compute_density_surface
from repro.cascade.digg import SyntheticDiggConfig, build_synthetic_digg_dataset
from repro.cascade.frontpage import FrontPageModel
from repro.cascade.simulator import CascadeConfig, CascadeSimulator
from repro.core.calibration import calibrate_dl_model_batched
from repro.core.dl_model import DiffusiveLogisticModel, solve_dl_batch
from repro.core.initial_density import InitialDensity
from repro.core.parameters import (
    DLParameters,
    ExponentialDecayGrowthRate,
    PAPER_S1_HOP_PARAMETERS,
)
from repro.network.distance import friendship_hop_distances
from repro.network.generators import DiggLikeGraphConfig, generate_digg_like_graph
from repro.numerics import operator_cache
from repro.numerics.grid import UniformGrid
from repro.numerics.operator_cache import clear_operator_caches
from repro.numerics.pde_solver import ReactionDiffusionProblem, ReactionDiffusionSolver


@pytest.fixture(scope="module")
def perf_graph():
    config = DiggLikeGraphConfig(
        num_users=2000,
        initial_core=8,
        follows_per_user=2,
        reciprocity_probability=0.3,
        triadic_closure_probability=0.15,
        preferential_fraction=0.45,
        recent_window=50,
        seed=99,
    )
    return generate_digg_like_graph(config)


def test_perf_graph_generation(benchmark):
    config = DiggLikeGraphConfig(
        num_users=1500,
        follows_per_user=2,
        preferential_fraction=0.45,
        recent_window=40,
        seed=5,
    )
    graph = benchmark(generate_digg_like_graph, config)
    assert graph.num_users == 1500


def test_perf_cascade_simulation(benchmark, perf_graph):
    config = CascadeConfig(
        follow_hazard=0.05,
        reinforcement=0.4,
        interest_decay=0.3,
        front_page=FrontPageModel(promotion_threshold=3, discovery_rate=40.0, staleness_decay=0.3),
        horizon_hours=50.0,
        time_step=0.25,
    )
    simulator = CascadeSimulator(perf_graph, config)
    hub = max(perf_graph.users(), key=perf_graph.out_degree)

    def run():
        return simulator.simulate(0, hub, np.random.default_rng(1))

    story = benchmark(run)
    assert story.num_votes > 10


def test_perf_hop_distances(benchmark, perf_graph):
    hub = max(perf_graph.users(), key=perf_graph.out_degree)
    distances = benchmark(friendship_hop_distances, perf_graph, hub)
    assert len(distances) > 1000


def test_perf_density_extraction(benchmark, perf_graph):
    config = CascadeConfig(
        follow_hazard=0.05,
        reinforcement=0.4,
        interest_decay=0.3,
        front_page=FrontPageModel(promotion_threshold=3, discovery_rate=40.0, staleness_decay=0.3),
        horizon_hours=50.0,
        time_step=0.25,
    )
    hub = max(perf_graph.users(), key=perf_graph.out_degree)
    story = CascadeSimulator(perf_graph, config).simulate(0, hub, np.random.default_rng(2))
    distances = friendship_hop_distances(perf_graph, hub)
    times = np.arange(1.0, 51.0)
    surface = benchmark(
        compute_density_surface, story, distances, range(1, 6), times
    )
    assert surface.values.shape == (50, 5)


def test_perf_corpus_build(benchmark):
    """Building a small corpus end to end (graph + 4 representative + 10 background cascades).

    A configuration not used anywhere else is chosen so the timing measures a
    genuine build rather than a hit in the library's corpus cache, and the
    build is run exactly once (pedantic) since repeated calls would be cached.
    """
    config = SyntheticDiggConfig(num_users=800, num_background_stories=10, seed=77)
    corpus = benchmark.pedantic(
        build_synthetic_digg_dataset, args=(config,), rounds=1, iterations=1
    )
    assert corpus.dataset.num_stories == 14


def test_perf_dl_solve(benchmark):
    phi = InitialDensity([1, 2, 3, 4, 5], [5.0, 2.0, 2.5, 1.5, 1.0])
    model = DiffusiveLogisticModel(PAPER_S1_HOP_PARAMETERS, points_per_unit=20, max_step=0.02)
    times = [float(t) for t in range(1, 7)]
    solution = benchmark(model.solve, phi, times)
    assert solution.times.size == 6


def test_perf_dl_solve_batch(benchmark):
    """32 parameter candidates advanced as columns of one batched solve."""
    phi = InitialDensity([1, 2, 3, 4, 5], [5.0, 2.0, 2.5, 1.5, 1.0])
    candidates = [
        PAPER_S1_HOP_PARAMETERS.with_diffusion_rate(0.005 + 0.003 * j) for j in range(32)
    ]
    times = [float(t) for t in range(1, 7)]
    solutions = benchmark(
        solve_dl_batch, candidates, phi, times, points_per_unit=20, max_step=0.02
    )
    assert len(solutions) == 32


# ---------------------------------------------------------------------- #
# JSON script mode: sequential vs batched solver engine
# ---------------------------------------------------------------------- #
def _synthetic_calibration_surface(hours: int = 8) -> DensitySurface:
    """A noise-free Digg-like density surface generated by the DL model."""
    phi = InitialDensity([1, 2, 3, 4, 5], [5.0, 2.0, 2.5, 1.5, 1.0])
    parameters = DLParameters(
        diffusion_rate=0.01,
        growth_rate=ExponentialDecayGrowthRate(1.4, 1.5, 0.25),
        carrying_capacity=25.0,
    )
    model = DiffusiveLogisticModel(parameters, points_per_unit=12, max_step=0.02)
    surface = model.predict(phi, [float(t) for t in range(1, hours + 1)])
    return DensitySurface(
        distances=surface.distances,
        times=surface.times,
        values=surface.values,
        group_sizes=np.ones(surface.distances.size),
        metadata={"source": "substrate_benchmark"},
    )


def _parameter_delta(a, b) -> float:
    """Largest absolute difference between two calibrated parameter sets."""
    return max(
        abs(a.parameters.diffusion_rate - b.parameters.diffusion_rate),
        abs(a.parameters.growth_rate.amplitude - b.parameters.growth_rate.amplitude),
        abs(a.parameters.growth_rate.decay - b.parameters.growth_rate.decay),
        abs(a.parameters.growth_rate.floor - b.parameters.growth_rate.floor),
    )


def run_operator_mode_benchmark(num_points: int = 4000, quick: bool = False) -> dict:
    """Per-step cost of the Crank-Nicolson operator modes on a fine grid.

    Solves one DL-style logistic problem on ``num_points`` nodes with each
    factorization mode, timing the stepping loop after a warm-up solve has
    paid the (cached) factorization, and reports the per-step time plus the
    maximum state delta of each mode against the dense-LU reference.
    """
    steps = 5 if quick else 20
    max_step = 0.02
    diffusion = 0.01
    grid = UniformGrid(1.0, 5.0, num_points)
    problem = ReactionDiffusionProblem(
        grid=grid,
        initial_condition=lambda x: 5.0 * np.exp(-((x - 1.0) ** 2)),
        diffusion=diffusion,
        reaction=lambda u, x, t: 0.8 * u * (1.0 - u / 25.0),
        start_time=1.0,
    )
    horizon = 1.0 + steps * max_step

    report = {"num_points": num_points, "max_step": max_step, "steps": steps}
    dense_states = None
    for mode in ("dense", "banded", "thomas"):
        clear_operator_caches()
        solver = ReactionDiffusionSolver(max_step=max_step, operator=mode)
        solver.solve(problem, [1.0 + max_step])  # pay the factorization up front
        start = time.perf_counter()
        solution = solver.solve(problem, [horizon])
        elapsed = time.perf_counter() - start
        steps_taken = int(solution.metadata["steps"])
        factor = operator_cache.crank_nicolson_operator(
            num_points, grid.spacing, max_step, diffusion, mode
        )
        entry = {
            "seconds": elapsed,
            "steps": steps_taken,
            "per_step_seconds": elapsed / steps_taken,
            "factor_nbytes": int(factor.nbytes),
        }
        if mode == "dense":
            dense_states = solution.states
            dense_per_step = entry["per_step_seconds"]
        else:
            entry["speedup_vs_dense"] = dense_per_step / entry["per_step_seconds"]
            entry["max_state_delta_vs_dense"] = float(
                np.max(np.abs(solution.states - dense_states))
            )
        report[mode] = entry
    clear_operator_caches()  # drop the 128 MB dense factor before returning
    return report


def run_batched_solver_benchmark(quick: bool = False) -> dict:
    """Time the batched solver engine against the sequential path.

    Four comparisons are reported:

    * ``calibration`` -- the grid-then-refine calibration with every grid
      candidate evaluated in batched solves vs candidate-by-candidate
      sequential solves (identical algorithm, so the parameter deltas double
      as an accuracy check).
    * ``refine`` -- the multi-start refinement stage alone, batched vs
      sequential residual/Jacobian evaluation (extracted from the
      calibration runs' diagnostics).
    * ``solver`` -- one batched forward solve of N parameter candidates vs N
      sequential solves of the same candidates.
    * ``operator`` -- dense vs banded vs Thomas factorizations of the
      Crank-Nicolson operator at n = 4000 (see
      :func:`run_operator_mode_benchmark`).
    """
    surface = _synthetic_calibration_surface()
    grids = (
        dict(amplitude_grid=(1.0, 1.5), decay_grid=(1.0, 1.5), floor_grid=(0.1, 0.25))
        if quick
        else {}
    )

    clear_operator_caches()
    start = time.perf_counter()
    sequential = calibrate_dl_model_batched(surface, engine="sequential", **grids)
    sequential_seconds = time.perf_counter() - start

    clear_operator_caches()
    start = time.perf_counter()
    batched = calibrate_dl_model_batched(surface, engine="batched", **grids)
    batched_seconds = time.perf_counter() - start

    phi = InitialDensity.from_surface(surface)
    batch_size = 8 if quick else 32
    candidates = [
        PAPER_S1_HOP_PARAMETERS.with_diffusion_rate(0.005 + 0.003 * j)
        for j in range(batch_size)
    ]
    times = [float(t) for t in range(1, 7)]

    clear_operator_caches()
    start = time.perf_counter()
    solo = [
        DiffusiveLogisticModel(c, points_per_unit=12, max_step=0.02).solve(phi, times)
        for c in candidates
    ]
    solver_sequential_seconds = time.perf_counter() - start

    clear_operator_caches()
    start = time.perf_counter()
    together = solve_dl_batch(candidates, phi, times, points_per_unit=12, max_step=0.02)
    solver_batched_seconds = time.perf_counter() - start

    max_state_delta = max(
        float(np.max(np.abs(a.pde_solution.states - b.pde_solution.states)))
        for a, b in zip(solo, together)
    )

    refine_sequential = sequential.details["refinement"]
    refine_batched = batched.details["refinement"]
    # Per-start equivalence of the refinement stage itself: every start's
    # final (amplitude, decay, floor) must match between the two engines,
    # not just the overall winner's.
    refine_parameter_delta = float(
        np.max(
            np.abs(
                np.asarray(refine_sequential["start_parameters"])
                - np.asarray(refine_batched["start_parameters"])
            )
        )
    )

    return {
        "benchmark": "substrate_batched_solver",
        "timestamp": time.time(),
        "quick": quick,
        "calibration": {
            "candidates": sequential.details["candidates_evaluated"],
            "sequential_seconds": sequential_seconds,
            "batched_seconds": batched_seconds,
            "speedup": sequential_seconds / batched_seconds,
            "max_parameter_delta": _parameter_delta(sequential, batched),
            "loss_delta": abs(sequential.loss - batched.loss),
        },
        "refine": {
            "starts": refine_batched["starts"],
            "iterations": refine_batched["iterations"],
            "n_evaluations": refine_batched["n_evaluations"],
            "sequential_seconds": refine_sequential["seconds"],
            "batched_seconds": refine_batched["seconds"],
            "speedup": refine_sequential["seconds"] / refine_batched["seconds"],
            "max_parameter_delta": refine_parameter_delta,
        },
        "solver": {
            "batch_size": batch_size,
            "sequential_seconds": solver_sequential_seconds,
            "batched_seconds": solver_batched_seconds,
            "speedup": solver_sequential_seconds / solver_batched_seconds,
            "max_state_delta": max_state_delta,
        },
        "operator": run_operator_mode_benchmark(quick=quick),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Emit machine-readable JSON timings of sequential vs batched solves."
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default="-",
        help="where to write the JSON report ('-' for stdout, the default)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller candidate grids / batch sizes (for CI smoke runs)",
    )
    args = parser.parse_args(argv)

    report = run_batched_solver_benchmark(quick=args.quick)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.json == "-":
        print(text)
    else:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        calibration = report["calibration"]
        operator = report["operator"]
        print(
            f"wrote {args.json}: calibration speedup "
            f"{calibration['speedup']:.1f}x over {calibration['candidates']} candidates "
            f"(max parameter delta {calibration['max_parameter_delta']:.2e}); "
            f"banded operator {operator['banded']['speedup_vs_dense']:.1f}x dense at "
            f"n={operator['num_points']} "
            f"(max state delta {operator['banded']['max_state_delta_vs_dense']:.2e})",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
