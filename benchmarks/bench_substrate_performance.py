"""Substrate performance benchmarks.

Not tied to a paper artifact: these time the building blocks that every
experiment depends on, so regressions in the simulator, the BFS distance
computation, the density extraction or the PDE solver are caught by the
benchmark harness rather than showing up as mysteriously slow experiments.
"""

import numpy as np
import pytest

from repro.cascade.density import compute_density_surface
from repro.cascade.digg import SyntheticDiggConfig, build_synthetic_digg_dataset
from repro.cascade.frontpage import FrontPageModel
from repro.cascade.simulator import CascadeConfig, CascadeSimulator
from repro.core.dl_model import DiffusiveLogisticModel
from repro.core.initial_density import InitialDensity
from repro.core.parameters import PAPER_S1_HOP_PARAMETERS
from repro.network.distance import friendship_hop_distances
from repro.network.generators import DiggLikeGraphConfig, generate_digg_like_graph


@pytest.fixture(scope="module")
def perf_graph():
    config = DiggLikeGraphConfig(
        num_users=2000,
        initial_core=8,
        follows_per_user=2,
        reciprocity_probability=0.3,
        triadic_closure_probability=0.15,
        preferential_fraction=0.45,
        recent_window=50,
        seed=99,
    )
    return generate_digg_like_graph(config)


def test_perf_graph_generation(benchmark):
    config = DiggLikeGraphConfig(
        num_users=1500,
        follows_per_user=2,
        preferential_fraction=0.45,
        recent_window=40,
        seed=5,
    )
    graph = benchmark(generate_digg_like_graph, config)
    assert graph.num_users == 1500


def test_perf_cascade_simulation(benchmark, perf_graph):
    config = CascadeConfig(
        follow_hazard=0.05,
        reinforcement=0.4,
        interest_decay=0.3,
        front_page=FrontPageModel(promotion_threshold=3, discovery_rate=40.0, staleness_decay=0.3),
        horizon_hours=50.0,
        time_step=0.25,
    )
    simulator = CascadeSimulator(perf_graph, config)
    hub = max(perf_graph.users(), key=perf_graph.out_degree)

    def run():
        return simulator.simulate(0, hub, np.random.default_rng(1))

    story = benchmark(run)
    assert story.num_votes > 10


def test_perf_hop_distances(benchmark, perf_graph):
    hub = max(perf_graph.users(), key=perf_graph.out_degree)
    distances = benchmark(friendship_hop_distances, perf_graph, hub)
    assert len(distances) > 1000


def test_perf_density_extraction(benchmark, perf_graph):
    config = CascadeConfig(
        follow_hazard=0.05,
        reinforcement=0.4,
        interest_decay=0.3,
        front_page=FrontPageModel(promotion_threshold=3, discovery_rate=40.0, staleness_decay=0.3),
        horizon_hours=50.0,
        time_step=0.25,
    )
    hub = max(perf_graph.users(), key=perf_graph.out_degree)
    story = CascadeSimulator(perf_graph, config).simulate(0, hub, np.random.default_rng(2))
    distances = friendship_hop_distances(perf_graph, hub)
    times = np.arange(1.0, 51.0)
    surface = benchmark(
        compute_density_surface, story, distances, range(1, 6), times
    )
    assert surface.values.shape == (50, 5)


def test_perf_corpus_build(benchmark):
    """Building a small corpus end to end (graph + 4 representative + 10 background cascades).

    A configuration not used anywhere else is chosen so the timing measures a
    genuine build rather than a hit in the library's corpus cache, and the
    build is run exactly once (pedantic) since repeated calls would be cached.
    """
    config = SyntheticDiggConfig(num_users=800, num_background_stories=10, seed=77)
    corpus = benchmark.pedantic(
        build_synthetic_digg_dataset, args=(config,), rounds=1, iterations=1
    )
    assert corpus.dataset.num_stories == 14


def test_perf_dl_solve(benchmark):
    phi = InitialDensity([1, 2, 3, 4, 5], [5.0, 2.0, 2.5, 1.5, 1.0])
    model = DiffusiveLogisticModel(PAPER_S1_HOP_PARAMETERS, points_per_unit=20, max_step=0.02)
    times = [float(t) for t in range(1, 7)]
    solution = benchmark(model.solve, phi, times)
    assert solution.times.size == 6
