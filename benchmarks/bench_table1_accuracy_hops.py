"""TAB-1 -- Prediction accuracy with friendship hops as distance (Table I).

Regenerates Table I of the paper: per-distance, per-hour prediction accuracy
of the DL model for story s1 over the first six hours, with friendship hops
as the spatial coordinate.

Paper reference values (original Digg dataset): distance-1 average 98.27%,
overall average across distances 1-6 of 92.81% (92.08% quoted in the
abstract for the first six hours).  The reproduction criterion is the shape:
accuracy uniformly high (close to or above 90%), with distance 1 among the
best-predicted rows.
"""

from conftest import run_once

from repro.analysis.experiments import run_table1_accuracy_hops
from repro.io.tables import write_csv


def test_table1_prediction_accuracy_hops(benchmark, bench_context, results_dir):
    table = run_once(benchmark, run_table1_accuracy_hops, bench_context)

    print()
    print(table.render("Table I (reproduced) -- prediction accuracy, friendship hops, story s1"))
    write_csv(table.to_rows(), results_dir / "table1_accuracy_hops.csv")

    # Shape criteria relative to the paper.
    assert table.overall_average > 0.85, "overall accuracy should be close to the paper's ~92%"
    assert table.row_average(1.0) > 0.85, "distance 1 should be predicted well (paper: 98.3%)"
    assert all(table.row_average(float(d)) > 0.7 for d in table.distances)
    # Every individual cell is meaningful (no degenerate zero-accuracy cells).
    assert table.accuracies.min() > 0.5
