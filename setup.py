"""Setup shim for environments without the `wheel` package.

The canonical build configuration lives in pyproject.toml; this file only
enables legacy editable installs (`pip install -e .`) on offline machines
where the PEP 517 editable-wheel path is unavailable.
"""

from setuptools import setup

setup()
