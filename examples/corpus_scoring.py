"""Corpus scoring: predict many cascades concurrently through the service layer.

The paper's protocol scores one story at a time; the service layer scales it
to whole corpora:

1. synthesize a corpus of story surfaces with one batched DL solve (stand-ins
   for thousands of observed cascades),
2. score the corpus through :class:`repro.PredictionService` -- stories are
   sharded by spatial signature and drained by a bounded async worker pool,
   streaming each result as its shard completes,
3. compare the wall time against the sequential per-story predictor loop,
4. write a ``repro serve-batch`` manifest for the same corpus, showing how to
   run the identical workload from the command line.

Run with:  python examples/corpus_scoring.py
"""

import asyncio
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import (
    PAPER_S1_HOP_PARAMETERS,
    DensitySurface,
    DiffusionPredictor,
    DiffusiveLogisticModel,
    InitialDensity,
    PredictionService,
)

CORPUS_SIZE = 40
TRAINING_TIMES = [float(t) for t in range(1, 7)]
EVALUATION_TIMES = TRAINING_TIMES[1:]


def build_corpus(size: int) -> "dict[str, DensitySurface]":
    """``size`` noise-free DL-generated cascades with per-story phi shapes."""
    rng = np.random.default_rng(7)
    model = DiffusiveLogisticModel(
        PAPER_S1_HOP_PARAMETERS, points_per_unit=12, max_step=0.02
    )
    corpus = {}
    for index in range(size):
        phi = InitialDensity([1, 2, 3, 4, 5], list(2.0 + 3.0 * rng.random(5)))
        surface = model.predict(phi, TRAINING_TIMES)
        corpus[f"cascade-{index:03d}"] = DensitySurface(
            distances=surface.distances,
            times=surface.times,
            values=surface.values,
            group_sizes=np.ones(surface.distances.size),
        )
    return corpus


async def score_with_service(corpus: "dict[str, DensitySurface]") -> dict:
    """Submit every story, stream results as shards complete."""
    async with PredictionService(
        parameters=PAPER_S1_HOP_PARAMETERS,
        points_per_unit=12,
        max_step=0.02,
        max_workers=4,
        max_shard_size=16,
    ) as service:
        jobs = [
            await service.submit(name, surface, TRAINING_TIMES, EVALUATION_TIMES)
            for name, surface in corpus.items()
        ]
        results = {}
        async for job in service.stream(jobs):
            result = await job.wait()
            results[job.name] = result
            if len(results) % 10 == 0 or len(results) == len(jobs):
                print(
                    f"  {len(results):3d}/{len(jobs)} scored "
                    f"(latest: {job.name}, accuracy {result.overall_accuracy:.3f})"
                )
        print(f"  service stats: {service.stats()}")
        return results


def main() -> None:
    corpus = build_corpus(CORPUS_SIZE)
    print(f"Scoring a corpus of {len(corpus)} cascades, hours 2-6\n")

    print("Async prediction service (sharded batches, 4 workers):")
    start = time.perf_counter()
    service_results = asyncio.run(score_with_service(corpus))
    service_seconds = time.perf_counter() - start

    print("\nSequential per-story loop (reference):")
    start = time.perf_counter()
    sequential_results = {}
    for name, surface in corpus.items():
        predictor = DiffusionPredictor(
            parameters=PAPER_S1_HOP_PARAMETERS, points_per_unit=12, max_step=0.02
        ).fit(surface, training_times=TRAINING_TIMES)
        sequential_results[name] = predictor.evaluate(surface, times=EVALUATION_TIMES)
    sequential_seconds = time.perf_counter() - start

    delta = max(
        float(
            np.max(
                np.abs(
                    service_results[name].predicted.values
                    - sequential_results[name].predicted.values
                )
            )
        )
        for name in corpus
    )
    print(f"  {sequential_seconds:.2f}s sequential vs {service_seconds:.2f}s service")
    print(
        f"  -> {sequential_seconds / service_seconds:.1f}x throughput "
        f"({len(corpus) / service_seconds:.0f} stories/s), "
        f"max result delta {delta:.2e}"
    )

    # The same workload as a serve-batch manifest (inline surfaces, so the
    # CLI run needs no corpus simulation).
    manifest = {
        "metric": "hops",
        "hours": 6,
        "stories": [
            {
                "name": name,
                "distances": [float(d) for d in surface.distances],
                "times": [float(t) for t in surface.times],
                "values": [[float(v) for v in row] for row in surface.values],
            }
            for name, surface in corpus.items()
        ],
    }
    path = Path(tempfile.gettempdir()) / "repro-corpus-manifest.json"
    path.write_text(json.dumps(manifest))
    print(f"\nWrote the equivalent serve-batch manifest to {path}")
    print(f"Run it with:  python -m repro serve-batch --manifest {path}")


if __name__ == "__main__":
    main()
