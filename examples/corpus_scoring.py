"""Corpus scoring: predict many cascades concurrently, under several models.

The paper's protocol scores one story at a time with one model; the service
layer plus the model registry scale it to whole corpora and whole model
line-ups:

1. synthesize a corpus of story surfaces with one batched DL solve (stand-ins
   for thousands of observed cascades),
2. score the corpus through :class:`repro.PredictionService` under the
   paper's DL model -- stories are sharded by spatial signature and drained
   by a bounded async worker pool,
3. score the *same* corpus under the ``logistic`` registry baseline with one
   ``model="logistic"`` switch (no other code changes -- the serving stack is
   model-agnostic),
4. print the DL-vs-logistic head-to-head (the paper's headline claim:
   diffusion + growth beats per-distance growth alone),
5. write a mixed-model ``repro serve-batch`` manifest for the same corpus,
   showing how to run the identical workload from the command line.

Run with:  python examples/corpus_scoring.py
"""

import asyncio
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import (
    PAPER_S1_HOP_PARAMETERS,
    DensitySurface,
    DiffusiveLogisticModel,
    InitialDensity,
    PredictionService,
    SolverConfig,
)

CORPUS_SIZE = 40
TRAINING_TIMES = [float(t) for t in range(1, 7)]
EVALUATION_TIMES = TRAINING_TIMES[1:]
SOLVER = SolverConfig(points_per_unit=12, max_step=0.02)


def build_corpus(size: int) -> "dict[str, DensitySurface]":
    """``size`` noise-free DL-generated cascades with per-story phi shapes."""
    rng = np.random.default_rng(7)
    model = DiffusiveLogisticModel(
        PAPER_S1_HOP_PARAMETERS, points_per_unit=12, max_step=0.02
    )
    corpus = {}
    for index in range(size):
        phi = InitialDensity([1, 2, 3, 4, 5], list(2.0 + 3.0 * rng.random(5)))
        surface = model.predict(phi, TRAINING_TIMES)
        corpus[f"cascade-{index:03d}"] = DensitySurface(
            distances=surface.distances,
            times=surface.times,
            values=surface.values,
            group_sizes=np.ones(surface.distances.size),
        )
    return corpus


async def score_with_service(corpus: "dict[str, DensitySurface]", model: str) -> dict:
    """Submit every story under one registry model; stream shard completions."""
    kwargs = {"parameters": PAPER_S1_HOP_PARAMETERS} if model == "dl" else {}
    async with PredictionService(
        solver=SOLVER,
        model=model,
        max_workers=4,
        max_shard_size=16,
        **kwargs,
    ) as service:
        jobs = [
            await service.submit(name, surface, TRAINING_TIMES, EVALUATION_TIMES)
            for name, surface in corpus.items()
        ]
        results = {}
        async for job in service.stream(jobs):
            results[job.name] = await job.wait()
        print(f"  [{model}] service stats: {service.stats()}")
        return results


def main() -> None:
    corpus = build_corpus(CORPUS_SIZE)
    print(f"Scoring a corpus of {len(corpus)} cascades, hours 2-6\n")

    accuracies = {}
    for model in ("dl", "logistic"):
        print(f"Async prediction service, model={model!r}:")
        start = time.perf_counter()
        results = asyncio.run(score_with_service(corpus, model))
        seconds = time.perf_counter() - start
        mean = float(
            np.mean([result.overall_accuracy for result in results.values()])
        )
        accuracies[model] = mean
        print(
            f"  {len(corpus)} stories in {seconds:.2f}s "
            f"({len(corpus) / seconds:.0f} stories/s), "
            f"mean overall accuracy {mean:.4f}\n"
        )

    print("Head-to-head (same corpus, same evaluation cells):")
    for model, accuracy in sorted(accuracies.items(), key=lambda kv: -kv[1]):
        print(f"  {model:>8}: {accuracy:.4f}")
    print(
        "  -> the DL model's diffusion term transfers information across\n"
        "     distances; the per-distance logistic baseline cannot.\n"
    )

    # The same workload as a serve-batch manifest -- mixed-model: the first
    # ten cascades ride the logistic baseline, the rest default to "dl"
    # (inline surfaces, so the CLI run needs no corpus simulation).
    stories = []
    for index, (name, surface) in enumerate(corpus.items()):
        story = {
            "name": name,
            "distances": [float(d) for d in surface.distances],
            "times": [float(t) for t in surface.times],
            "values": [[float(v) for v in row] for row in surface.values],
        }
        if index < 10:
            story["model"] = "logistic"
        stories.append(story)
    manifest = {"metric": "hops", "hours": 6, "model": "dl", "stories": stories}
    path = Path(tempfile.gettempdir()) / "repro-corpus-manifest.json"
    path.write_text(json.dumps(manifest))
    print(f"Wrote the equivalent mixed-model serve-batch manifest to {path}")
    print(f"Run it with:  python -m repro serve-batch --manifest {path}")


if __name__ == "__main__":
    main()
