"""Reproduce the paper's evaluation on the synthetic Digg corpus.

This example walks through Section III of the paper end to end:

* characterise the temporal and spatial diffusion patterns of the four
  representative stories (Figures 2-5),
* calibrate the DL model on the first six hours of the most popular story,
* regenerate the prediction-accuracy tables for both distance metrics
  (Tables I and II).

It uses the same experiment runners as the benchmark harness, so the output
matches what ``pytest benchmarks/ --benchmark-only`` reports, just in a plain
script you can step through.

Run with:  python examples/digg_prediction.py [--small]
"""

import argparse

from repro.analysis.experiments import (
    ExperimentContext,
    run_fig2_distance_distribution,
    run_fig3_density_hops,
    run_fig6_growth_rate,
    run_table1_accuracy_hops,
    run_table2_accuracy_interests,
)
from repro.analysis.patterns import saturation_time
from repro.analysis.reports import render_figure_series, render_growth_rate_comparison
from repro.cascade.digg import SyntheticDiggConfig


def build_context(small: bool) -> ExperimentContext:
    if small:
        return ExperimentContext(
            config=SyntheticDiggConfig(num_users=1500, num_background_stories=30, seed=7)
        )
    return ExperimentContext()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small",
        action="store_true",
        help="use a reduced corpus (1,500 users) for a faster run",
    )
    args = parser.parse_args()
    context = build_context(args.small)

    print("== Figure 2: where do users sit relative to the initiators? ==")
    fig2 = run_fig2_distance_distribution(context)
    print(render_figure_series(fig2, x_label="hop distance"))
    print()

    print("== Figure 3: how fast does each story spread? ==")
    fig3 = run_fig3_density_hops(context)
    for story, surface in fig3.items():
        final = ", ".join(
            f"x={d:g}: {v:.1f}%" for d, v in zip(surface.distances, surface.values[-1])
        )
        print(
            f"  {story}: saturates at ~{saturation_time(surface, 1.0, 0.9):.0f} h; "
            f"final densities {final}"
        )
    print()

    print("== Figure 6: the decreasing growth rate r(t) ==")
    fig6 = run_fig6_growth_rate(context)
    print(render_growth_rate_comparison(fig6))
    print()

    print("== Table I: prediction accuracy, friendship hops ==")
    table1 = run_table1_accuracy_hops(context)
    print(table1.render())
    print()

    print("== Table II: prediction accuracy, shared interests ==")
    table2 = run_table2_accuracy_interests(context)
    print(table2.render())
    print()

    print(
        "Paper reference points: Table I overall ~92.8% (distance 1 ~98.3%); "
        "Table II rows 1-4 ~91-97% with row 5 degrading to ~40%."
    )


if __name__ == "__main__":
    main()
