"""Quickstart: predict information diffusion with the Diffusive Logistic model.

This is the shortest end-to-end tour of the library:

1. build a (small) synthetic Digg-like corpus,
2. extract the density surface I(x, t) of the most popular story with
   friendship hops as the distance metric,
3. anchor the DL model to the hour-1 snapshot using the paper's published
   parameters for story s1 (d = 0.01, K = 25, r(t) = 1.4 e^{-1.5(t-1)} + 0.25),
4. predict hours 2-6 and print the paper-style accuracy table.

Run with:  python examples/quickstart.py
"""

from repro import (
    PAPER_S1_HOP_PARAMETERS,
    DiffusionPredictor,
    SyntheticDiggConfig,
    build_synthetic_digg_dataset,
)
from repro.analysis.reports import render_prediction_comparison


def main() -> None:
    # A reduced corpus keeps the quickstart fast; drop the config argument to
    # use the full benchmark corpus (6,000 users).
    corpus = build_synthetic_digg_dataset(
        SyntheticDiggConfig(num_users=2000, num_background_stories=30, seed=42)
    )
    print(f"Built synthetic corpus: {corpus.dataset!r}")

    observed = corpus.hop_density_surface("s1")
    print(
        f"Observed density surface for s1: {observed.values.shape[0]} hours x "
        f"{observed.values.shape[1]} distances, max density {observed.max_density:.1f}%"
    )

    predictor = DiffusionPredictor(parameters=PAPER_S1_HOP_PARAMETERS)
    predictor.fit(observed)

    result = predictor.evaluate(observed)
    print()
    print(render_prediction_comparison(result, title="DL prediction vs observations (story s1)"))
    print()
    print(result.accuracy_table.render("Prediction accuracy by distance and hour"))


if __name__ == "__main__":
    main()
