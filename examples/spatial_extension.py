"""Future-work extension: a growth rate that depends on distance as well as time.

Table II of the paper shows the uniform DL model struggling at the largest
shared-interest distance group, and Section V proposes letting the parameters
vary with distance.  This example demonstrates the extension shipped in
``repro.core.extensions``:

1. extract the shared-interest density surface of the most popular story,
2. calibrate the standard (spatially uniform) DL model,
3. calibrate a distance-dependent multiplier on the growth rate on top of it,
4. compare the two models' per-group prediction accuracy.

Run with:  python examples/spatial_extension.py
"""

from repro.cascade.digg import SyntheticDiggConfig, build_synthetic_digg_dataset
from repro.core.accuracy import build_accuracy_table
from repro.core.calibration import calibrate_dl_model
from repro.core.dl_model import DiffusiveLogisticModel
from repro.core.extensions import calibrate_spatial_scaling
from repro.core.initial_density import InitialDensity
from repro.io.tables import format_table

TRAINING_HOURS = [float(t) for t in range(1, 7)]
EVALUATION_HOURS = [float(t) for t in range(2, 7)]


def main() -> None:
    corpus = build_synthetic_digg_dataset(
        SyntheticDiggConfig(num_users=2000, num_background_stories=40, seed=11)
    )
    observed = corpus.interest_density_surface("s1")
    phi = InitialDensity.from_surface(observed.restrict_times(TRAINING_HOURS))

    print("Calibrating the spatially uniform DL model ...")
    uniform = calibrate_dl_model(observed, training_times=TRAINING_HOURS)
    print(f"  training loss: {uniform.loss:.4f}")

    print("Calibrating the distance-dependent growth-rate extension ...")
    spatial = calibrate_spatial_scaling(observed, uniform)
    scales = spatial.details["spatial_scaling_fit"].as_dict()
    print(f"  training loss: {spatial.loss:.4f}")
    print(f"  fitted per-group multipliers: { {k: round(v, 2) for k, v in scales.items()} }")

    actual = observed.restrict_times(EVALUATION_HOURS)
    rows = []
    for name, calibration in (("uniform", uniform), ("spatially scaled", spatial)):
        model = DiffusiveLogisticModel(calibration.parameters, points_per_unit=20, max_step=0.02)
        predicted = model.predict(phi, EVALUATION_HOURS)
        table = build_accuracy_table(predicted, actual, times=EVALUATION_HOURS)
        row = {"model": name, "overall": f"{table.overall_average * 100:.1f}%"}
        for distance in table.distances:
            row[f"group {distance:g}"] = f"{table.row_average(float(distance)) * 100:.1f}%"
        rows.append(row)

    print()
    print(format_table(rows, title="Uniform vs distance-dependent growth rate (s1, shared interests)"))
    print()
    print(
        "The spatially scaled model matches the uniform model where it already "
        "works and improves the groups whose growth the uniform rate cannot "
        "track -- the refinement the paper proposes as future work."
    )


if __name__ == "__main__":
    main()
