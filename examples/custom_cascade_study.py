"""Study a custom cascade on your own network with the DL model.

The synthetic Digg corpus is convenient, but the library works with any
follower graph and any vote cascade.  This example builds everything by hand:

1. generate a follower graph (here: a small-world topology, to show the model
   is not tied to the Digg-like generator),
2. simulate a single story's cascade with explicit parameters,
3. compute the density surface I(x, t) with friendship hops as distance,
4. calibrate the DL model on the first four observed hours only,
5. forecast the next eight hours and compare against what actually happened,
   side by side with the temporal-only per-distance logistic baseline.

Run with:  python examples/custom_cascade_study.py
"""

import numpy as np

from repro.baselines.logistic import PerDistanceLogisticBaseline
from repro.cascade.density import compute_density_surface
from repro.cascade.frontpage import FrontPageModel
from repro.cascade.simulator import CascadeConfig, CascadeSimulator
from repro.core.accuracy import build_accuracy_table
from repro.core.prediction import DiffusionPredictor
from repro.io.tables import format_table
from repro.network.distance import friendship_hop_distances
from repro.network.generators import generate_small_world_graph

TRAINING_HOURS = [1.0, 2.0, 3.0, 4.0]
FORECAST_HOURS = [float(t) for t in range(5, 13)]


def main() -> None:
    rng = np.random.default_rng(2024)

    # 1. A small-world follower graph: 1,200 users, each following ~6 others.
    graph = generate_small_world_graph(1200, neighbours=6, rewiring_probability=0.15, seed=3)
    initiator = 0
    print(f"Graph: {graph!r}")

    # 2. One story's cascade: moderate follower hazard plus a front page that
    #    promotes after 5 votes.
    config = CascadeConfig(
        follow_hazard=0.06,
        reinforcement=0.4,
        interest_decay=0.15,
        front_page=FrontPageModel(promotion_threshold=5, discovery_rate=25.0, staleness_decay=0.2),
        horizon_hours=24.0,
        time_step=0.25,
    )
    story = CascadeSimulator(graph, config).simulate(0, initiator, rng)
    print(f"Simulated cascade: {story.num_votes} votes over 24 hours")

    # 3. Density surface over hop distances 1..6, hourly.
    distances = friendship_hop_distances(graph, initiator)
    max_distance = min(6, max(distances.values()))
    observed = compute_density_surface(
        story, distances, range(1, max_distance + 1), times=np.arange(1.0, 25.0)
    )
    print(f"Density surface: {observed.values.shape[0]} hours x {observed.values.shape[1]} distances")

    # 4. Calibrate the DL model on the first four hours only.
    predictor = DiffusionPredictor().fit(observed, training_times=TRAINING_HOURS)
    print(f"Calibrated parameters: {predictor.parameters}")

    # 5. Forecast hours 5-12 and score both the DL model and the baseline.
    dl_result = predictor.evaluate(observed, times=FORECAST_HOURS)
    baseline = PerDistanceLogisticBaseline().fit(observed, TRAINING_HOURS)
    baseline_table = build_accuracy_table(
        baseline.predict(FORECAST_HOURS),
        observed.restrict_times(FORECAST_HOURS),
        times=FORECAST_HOURS,
    )

    rows = []
    for distance in observed.distances:
        rows.append(
            {
                "distance": float(distance),
                "actual @ t=12": observed.density(float(distance), 12.0),
                "DL forecast @ t=12": dl_result.predicted.density(float(distance), 12.0),
                "DL accuracy": dl_result.accuracy_at_distance(float(distance)),
                "logistic accuracy": baseline_table.row_average(float(distance)),
            }
        )
    print()
    print(format_table(rows, title="Forecast of hours 5-12 from a 4-hour training window"))
    print()
    print(f"DL model overall forecast accuracy:        {dl_result.overall_accuracy * 100:.1f}%")
    print(f"Per-distance logistic baseline accuracy:   {baseline_table.overall_average * 100:.1f}%")
    print()
    print("Self-checks from the paper's theory (Section II-C):")
    print(f"  0 <= I <= K everywhere:      {dl_result.diagnostics['bounds_ok']}")
    print(f"  I non-decreasing in time:    {dl_result.diagnostics['monotone_in_time']}")


if __name__ == "__main__":
    main()
