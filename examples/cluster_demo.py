"""Cluster mode: a router daemon driving a two-worker fleet on localhost.

With ``--executor cluster`` the daemon becomes a *router*: instead of
solving shards in a local thread or process pool it fans them out -- as
the same picklable payloads the process backend uses -- to worker
daemons over the JSON-lines protocol.  Shards are hash-routed by their
``ShardKey`` for operator-cache affinity, stolen by idle workers when a
queue runs deep, and rerouted through the normal bisection retry when a
worker dies mid-shard.  This example walks the whole story on one
machine:

1. launch two *worker* daemons as real subprocesses on localhost TCP
   (plain ``repro daemon`` -- any daemon answers the ``worker`` op),
2. boot a router :class:`repro.service.PredictionDaemon` with
   ``executor="cluster"`` pointing at both workers, and submit a job
   through it with :class:`repro.service.DaemonClient`,
3. read the fleet view out of the ``stats`` op (liveness, in-flight and
   solved counts per worker -- what ``repro daemon-stats`` prints),
4. kill one worker mid-job with the second submission and watch the job
   still complete on the survivor (``cluster.reroutes`` counts the
   shards that were re-queued off the corpse).

Run with:  python examples/cluster_demo.py
"""

import asyncio
import os
import socket
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

import repro
from repro import (
    PAPER_S1_HOP_PARAMETERS,
    DiffusiveLogisticModel,
    InitialDensity,
)
from repro.core.config import SolverConfig
from repro.service import DaemonClient, PredictionDaemon

HOURS = 5
REPO_SRC = str(Path(repro.__file__).resolve().parents[1])


def build_manifest(name_prefix: str, size: int, seed: int) -> dict:
    """A manifest of ``size`` inline DL-generated cascade surfaces."""
    rng = np.random.default_rng(seed)
    model = DiffusiveLogisticModel(
        PAPER_S1_HOP_PARAMETERS, points_per_unit=12, max_step=0.02
    )
    stories = []
    for index in range(size):
        phi = InitialDensity([1, 2, 3, 4, 5], list(2.0 + 3.0 * rng.random(5)))
        surface = model.predict(phi, [float(t) for t in range(1, HOURS + 1)])
        stories.append(
            {
                "name": f"{name_prefix}-{index:02d}",
                "distances": [float(d) for d in surface.distances],
                "times": [float(t) for t in surface.times],
                "values": [[float(v) for v in row] for row in surface.values],
            }
        )
    return {"metric": "hops", "hours": HOURS, "stories": stories}


def free_tcp_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def launch_worker(address: str) -> subprocess.Popen:
    """One worker = one ordinary ``repro daemon`` process."""
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "daemon", "--listen", address, "--workers", "2"],
        env={**os.environ, "PYTHONPATH": REPO_SRC},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


async def submit_job(
    address: str, job_id: str, manifest: dict, kill_after: "tuple[int, subprocess.Popen] | None" = None
) -> None:
    """Stream one job's events; optionally kill a worker process mid-stream."""
    results = 0
    async with await DaemonClient.connect(address) as client:
        async for event in client.submit(manifest, job_id=job_id, timeout=120.0):
            kind = event["event"]
            if kind == "accepted":
                print(f"  [{job_id}] accepted: {len(event['stories'])} stories")
            elif kind == "result":
                results += 1
                accuracy = event.get("overall_accuracy")
                detail = f"accuracy {accuracy:.3f}" if accuracy is not None else event.get("error", "")
                print(f"  [{job_id}] {event['story']}: {event['status']} ({detail})")
                if kill_after is not None and results == kill_after[0]:
                    print(f"  [{job_id}] !! killing worker pid {kill_after[1].pid} mid-job")
                    kill_after[1].kill()
            elif kind == "job":
                print(f"  [{job_id}] completed in {event['seconds']:.2f}s: {event['stories']}")
            elif kind == "error":
                raise RuntimeError(f"daemon rejected the job: {event['error']}")


async def print_fleet(address: str) -> dict:
    async with await DaemonClient.connect(address) as client:
        stats = await client.stats()
    info = stats["service"]["executor_info"]
    alive = sum(1 for worker in info["fleet"] if worker["alive"])
    print(
        f"\nfleet: {alive}/{len(info['fleet'])} workers alive, "
        f"{info['shards_stolen']} stolen, {info['reroutes']} rerouted"
    )
    for worker in info["fleet"]:
        state = "alive" if worker["alive"] else "dead"
        print(
            f"  {worker['worker']:<24} {state:<6} "
            f"inflight {worker['inflight']}  solved {worker['shards_solved']}"
        )
    return info


async def main() -> None:
    worker_addresses = [f"tcp:127.0.0.1:{free_tcp_port()}" for _ in range(2)]
    procs = [launch_worker(address) for address in worker_addresses]
    print(f"worker fleet: {', '.join(worker_addresses)}")

    try:
        with tempfile.TemporaryDirectory() as tmpdir:
            socket_path = os.path.join(tmpdir, "repro-router.sock")
            address = f"unix:{socket_path}"
            # In production: `repro daemon --listen ... --executor cluster
            #   --worker tcp:HOST:PORT --worker tcp:HOST:PORT` (or
            #   --workers-file fleet.txt) as its own process.
            router = PredictionDaemon(
                parameters=PAPER_S1_HOP_PARAMETERS,
                solver=SolverConfig(points_per_unit=12, max_step=0.02),
                max_workers=4,
                max_shard_size=1,
                executor="cluster",
                executor_options={
                    "workers": worker_addresses,
                    # The router may dial before the workers finish booting.
                    "connect_retries": 20,
                    "connect_backoff": 0.25,
                },
            )
            server = asyncio.ensure_future(router.serve_unix(socket_path))
            while not os.path.exists(socket_path):
                await asyncio.sleep(0.01)
            print(f"router listening on {address}\n")

            await submit_job(address, "fanout", build_manifest("fan", 6, seed=1))
            await print_fleet(address)

            print("\nsecond job, with a worker killed after two results:")
            await submit_job(
                address,
                "survive-a-crash",
                build_manifest("crash", 8, seed=2),
                kill_after=(2, procs[0]),
            )
            info = await print_fleet(address)
            print(
                f"\nthe job finished on the surviving worker; "
                f"{info['reroutes']} in-flight shards were rerouted"
            )

            async with await DaemonClient.connect(address) as client:
                print(f"shutting down router: {await client.shutdown()}")
            await server
    finally:
        for proc in procs:
            proc.kill()
            proc.wait()
    print("done")


if __name__ == "__main__":
    asyncio.run(main())
