"""Programmatic submission to the long-lived prediction daemon.

The daemon (``repro daemon``) keeps one sharded worker pool -- and its
cached operator factorizations -- warm across many jobs, speaking a
JSON-lines protocol over stdin/stdout, a Unix-domain socket or TCP.  This
example drives the Unix-socket transport end to end from Python (swap the
address for ``tcp:HOST:PORT`` and nothing else changes):

1. boot a :class:`repro.service.PredictionDaemon` on a Unix socket inside
   this process (in production it runs as its own ``repro daemon --listen``
   process; the protocol is identical),
2. connect a :class:`repro.service.DaemonClient` and submit two jobs --
   manifests of inline cascade surfaces -- streaming each per-story
   ``result`` event as its shard completes,
3. query job ``status`` and daemon ``stats`` (service counters, autotuner
   state, telemetry snapshot) over the same connection,
4. shut the daemon down gracefully (it drains every running job first).

Run with:  python examples/daemon_client.py
"""

import asyncio
import os
import tempfile

import numpy as np

from repro import (
    PAPER_S1_HOP_PARAMETERS,
    DiffusiveLogisticModel,
    InitialDensity,
)
from repro.core.config import SolverConfig
from repro.service import DaemonClient, PredictionDaemon

HOURS = 6


def build_manifest(name_prefix: str, size: int, seed: int) -> dict:
    """A manifest of ``size`` inline DL-generated cascade surfaces."""
    rng = np.random.default_rng(seed)
    model = DiffusiveLogisticModel(
        PAPER_S1_HOP_PARAMETERS, points_per_unit=12, max_step=0.02
    )
    stories = []
    for index in range(size):
        phi = InitialDensity([1, 2, 3, 4, 5], list(2.0 + 3.0 * rng.random(5)))
        surface = model.predict(phi, [float(t) for t in range(1, HOURS + 1)])
        stories.append(
            {
                "name": f"{name_prefix}-{index:02d}",
                "distances": [float(d) for d in surface.distances],
                "times": [float(t) for t in surface.times],
                "values": [[float(v) for v in row] for row in surface.values],
            }
        )
    return {"metric": "hops", "hours": HOURS, "stories": stories}


async def submit_job(address: str, job_id: str, manifest: dict) -> None:
    """One connection, one job: stream every event until completion."""
    async with await DaemonClient.connect(address) as client:
        async for event in client.submit(manifest, job_id=job_id, timeout=60.0):
            kind = event["event"]
            if kind == "accepted":
                print(f"  [{job_id}] accepted: {len(event['stories'])} stories")
            elif kind == "result":
                accuracy = event.get("overall_accuracy")
                detail = f"accuracy {accuracy:.3f}" if accuracy is not None else event.get("error", "")
                print(f"  [{job_id}] {event['story']}: {event['status']} ({detail})")
            elif kind == "job":
                print(f"  [{job_id}] completed in {event['seconds']:.2f}s: {event['stories']}")
            elif kind == "error":
                raise RuntimeError(f"daemon rejected the job: {event['error']}")


async def main() -> None:
    with tempfile.TemporaryDirectory() as tmpdir:
        socket_path = os.path.join(tmpdir, "repro-daemon.sock")
        address = f"unix:{socket_path}"
        # In production: run `repro daemon --listen unix:<path> --autotune`
        # (or --listen tcp:HOST:PORT) as its own process and skip straight
        # to DaemonClient.connect(address).
        daemon = PredictionDaemon(
            parameters=PAPER_S1_HOP_PARAMETERS,
            solver=SolverConfig(points_per_unit=12, max_step=0.02),
            max_workers=4,
            autotune=True,
        )
        server = asyncio.ensure_future(daemon.serve_unix(socket_path))
        while not os.path.exists(socket_path):
            await asyncio.sleep(0.01)
        print(f"daemon listening on {socket_path}\n")

        # Two jobs submitted concurrently over separate connections -- they
        # share the daemon's worker pool and operator caches.
        await asyncio.gather(
            submit_job(address, "morning-batch", build_manifest("am", 6, seed=1)),
            submit_job(address, "evening-batch", build_manifest("pm", 4, seed=2)),
        )

        async with await DaemonClient.connect(address) as client:
            status = await client.status("morning-batch")
            print(f"\nstatus of morning-batch: {status['status']}, {status['stories']}")
            stats = await client.stats()
            service = stats["service"]
            print(
                f"daemon stats: {stats['jobs']['total']} jobs, "
                f"{service['stories_solved']} stories in "
                f"{service['shards_solved']} shards, "
                f"autotuned shard size {service['autotuner']['recommended_size']} "
                f"(EWMA {service['autotuner']['ewma_story_seconds'] * 1e3:.1f} ms/story)"
            )
            print(f"shutting down: {await client.shutdown()}")
        await server
        print("daemon exited")


if __name__ == "__main__":
    asyncio.run(main())
