"""Tests for repro.numerics.grid."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.numerics.grid import UniformGrid


class TestConstruction:
    def test_basic_properties(self):
        grid = UniformGrid(1.0, 5.0, 9)
        assert grid.spacing == pytest.approx(0.5)
        assert grid.length == pytest.approx(4.0)
        assert len(grid) == 9
        assert grid.nodes[0] == pytest.approx(1.0)
        assert grid.nodes[-1] == pytest.approx(5.0)

    def test_nodes_are_evenly_spaced(self):
        grid = UniformGrid(0.0, 1.0, 11)
        assert np.allclose(np.diff(grid.nodes), grid.spacing)

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            UniformGrid(0.0, 1.0, 1)

    def test_rejects_reversed_interval(self):
        with pytest.raises(ValueError):
            UniformGrid(5.0, 1.0, 10)

    def test_rejects_degenerate_interval(self):
        with pytest.raises(ValueError):
            UniformGrid(2.0, 2.0, 10)

    def test_rejects_non_finite_endpoints(self):
        with pytest.raises(ValueError):
            UniformGrid(float("nan"), 1.0, 10)
        with pytest.raises(ValueError):
            UniformGrid(0.0, float("inf"), 10)


class TestLookup:
    def test_contains(self):
        grid = UniformGrid(1.0, 5.0, 5)
        assert grid.contains(1.0)
        assert grid.contains(3.7)
        assert grid.contains(5.0)
        assert not grid.contains(0.99)
        assert not grid.contains(5.01)

    def test_index_of_exact_nodes(self):
        grid = UniformGrid(1.0, 5.0, 5)
        for i, node in enumerate(grid.nodes):
            assert grid.index_of(node) == i

    def test_index_of_rounds_to_nearest(self):
        grid = UniformGrid(0.0, 1.0, 11)
        assert grid.index_of(0.32) == 3
        assert grid.index_of(0.38) == 4

    def test_index_of_outside_raises(self):
        grid = UniformGrid(1.0, 5.0, 5)
        with pytest.raises(ValueError):
            grid.index_of(6.0)

    def test_indices_of_vectorised(self):
        grid = UniformGrid(1.0, 5.0, 9)
        indices = grid.indices_of(np.array([1.0, 2.0, 3.0, 5.0]))
        assert list(indices) == [0, 2, 4, 8]

    def test_indices_of_rejects_out_of_range(self):
        grid = UniformGrid(1.0, 5.0, 9)
        with pytest.raises(ValueError):
            grid.indices_of(np.array([0.0, 2.0]))


class TestRefinement:
    def test_refine_doubles_intervals(self):
        grid = UniformGrid(1.0, 5.0, 5)
        fine = grid.refine(2)
        assert fine.num_points == 9
        assert fine.lower == grid.lower
        assert fine.upper == grid.upper
        assert fine.spacing == pytest.approx(grid.spacing / 2)

    def test_refine_factor_one_is_identity(self):
        grid = UniformGrid(1.0, 5.0, 5)
        assert grid.refine(1) == grid

    def test_refine_rejects_zero(self):
        with pytest.raises(ValueError):
            UniformGrid(1.0, 5.0, 5).refine(0)

    def test_coarse_nodes_are_subset_of_refined(self):
        grid = UniformGrid(1.0, 6.0, 6)
        fine = grid.refine(4)
        for node in grid.nodes:
            assert np.any(np.isclose(fine.nodes, node))


class TestFromIntegerDistances:
    def test_spans_min_to_max(self):
        grid = UniformGrid.from_integer_distances([1, 2, 3, 4, 5], points_per_unit=10)
        assert grid.lower == 1.0
        assert grid.upper == 5.0
        assert grid.num_points == 41

    def test_integer_distances_are_grid_nodes(self):
        grid = UniformGrid.from_integer_distances([1, 2, 3, 4, 5], points_per_unit=7)
        for distance in range(1, 6):
            assert np.any(np.isclose(grid.nodes, distance))

    def test_requires_two_distances(self):
        with pytest.raises(ValueError):
            UniformGrid.from_integer_distances([3])

    def test_requires_distinct_distances(self):
        with pytest.raises(ValueError):
            UniformGrid.from_integer_distances([3, 3, 3])


@given(
    lower=st.floats(-100, 100),
    length=st.floats(0.1, 200),
    num_points=st.integers(2, 200),
)
def test_spacing_times_intervals_equals_length(lower, length, num_points):
    grid = UniformGrid(lower, lower + length, num_points)
    assert grid.spacing * (num_points - 1) == pytest.approx(grid.length, rel=1e-9)


@given(num_points=st.integers(2, 100), factor=st.integers(1, 5))
def test_refined_grid_point_count(num_points, factor):
    grid = UniformGrid(0.0, 1.0, num_points)
    assert grid.refine(factor).num_points == (num_points - 1) * factor + 1
