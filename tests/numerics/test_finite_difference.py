"""Tests for the Neumann-boundary finite-difference operators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numerics.finite_difference import (
    NeumannLaplacian,
    laplacian_matrix,
    laplacian_tridiagonal,
    second_derivative,
)
from repro.numerics.grid import UniformGrid


class TestLaplacianMatrix:
    def test_shape_and_symmetric_stencil(self):
        matrix = laplacian_matrix(5, 1.0)
        assert matrix.shape == (5, 5)
        assert matrix[2, 1] == 1.0
        assert matrix[2, 2] == -2.0
        assert matrix[2, 3] == 1.0

    def test_neumann_rows(self):
        matrix = laplacian_matrix(4, 0.5)
        inv_h2 = 4.0
        assert matrix[0, 0] == pytest.approx(-2.0 * inv_h2)
        assert matrix[0, 1] == pytest.approx(2.0 * inv_h2)
        assert matrix[-1, -1] == pytest.approx(-2.0 * inv_h2)
        assert matrix[-1, -2] == pytest.approx(2.0 * inv_h2)

    def test_constant_vector_in_null_space(self):
        matrix = laplacian_matrix(12, 0.3)
        constant = np.full(12, 3.7)
        assert np.allclose(matrix @ constant, 0.0, atol=1e-10)

    def test_row_sums_are_zero(self):
        matrix = laplacian_matrix(9, 0.25)
        assert np.allclose(matrix.sum(axis=1), 0.0, atol=1e-10)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            laplacian_matrix(1, 0.1)
        with pytest.raises(ValueError):
            laplacian_matrix(5, 0.0)
        with pytest.raises(ValueError):
            laplacian_matrix(5, -1.0)


class TestLaplacianTridiagonal:
    @pytest.mark.parametrize("num_points", [2, 3, 7, 24])
    def test_bands_match_dense_matrix(self, num_points):
        sub, diag, sup = laplacian_tridiagonal(num_points, 0.4)
        dense = laplacian_matrix(num_points, 0.4)
        rebuilt = np.diag(diag) + np.diag(sub, -1) + np.diag(sup, 1)
        assert np.array_equal(rebuilt, dense)

    def test_boundary_entries_doubled(self):
        sub, diag, sup = laplacian_tridiagonal(6, 0.5)
        inv_h2 = 4.0
        assert sup[0] == pytest.approx(2.0 * inv_h2)
        assert sub[-1] == pytest.approx(2.0 * inv_h2)
        assert np.all(diag == pytest.approx(-2.0 * inv_h2))

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            laplacian_tridiagonal(1, 0.1)
        with pytest.raises(ValueError):
            laplacian_tridiagonal(5, 0.0)


class TestSecondDerivative:
    def test_matches_matrix_application(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=17)
        spacing = 0.37
        matrix = laplacian_matrix(17, spacing)
        assert np.allclose(second_derivative(values, spacing), matrix @ values)

    def test_quadratic_interior_exact(self):
        # u = x^2 has u'' = 2 everywhere; the centred stencil is exact on the
        # interior nodes for quadratics.
        grid = UniformGrid(0.0, 2.0, 21)
        values = grid.nodes**2
        result = second_derivative(values, grid.spacing)
        assert np.allclose(result[1:-1], 2.0, atol=1e-9)

    def test_cosine_mode_convergence(self):
        # u = cos(pi x) satisfies the Neumann conditions on [0, 1]; the
        # discrete Laplacian should converge to -pi^2 cos(pi x) at second order.
        errors = []
        for num_points in (21, 41, 81):
            grid = UniformGrid(0.0, 1.0, num_points)
            values = np.cos(np.pi * grid.nodes)
            exact = -np.pi**2 * np.cos(np.pi * grid.nodes)
            approx = second_derivative(values, grid.spacing)
            errors.append(np.max(np.abs(approx - exact)))
        # Halving h should reduce the error by about a factor of four.
        assert errors[1] < errors[0] / 3.0
        assert errors[2] < errors[1] / 3.0

    def test_column_block_matches_per_column_application(self):
        # The batched Crank-Nicolson engine applies the operator to a whole
        # (n, batch) state matrix at once.
        rng = np.random.default_rng(3)
        block = rng.normal(size=(17, 5))
        spacing = 0.37
        result = second_derivative(block, spacing)
        assert result.shape == block.shape
        for j in range(block.shape[1]):
            assert np.allclose(result[:, j], second_derivative(block[:, j], spacing))

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            second_derivative(np.array([1.0]), 0.1)
        with pytest.raises(ValueError):
            second_derivative(np.array([[1.0, 2.0]]), 0.1)
        with pytest.raises(ValueError):
            second_derivative(np.array([1.0, 2.0]), -0.5)
        with pytest.raises(ValueError):
            second_derivative(np.ones((2, 2, 2)), 0.1)


class TestNeumannLaplacian:
    def test_matrix_is_cached(self):
        operator = NeumannLaplacian(UniformGrid(0.0, 1.0, 11))
        assert operator.matrix is operator.matrix

    def test_apply_matches_matrix(self, rng):
        grid = UniformGrid(1.0, 5.0, 33)
        operator = NeumannLaplacian(grid)
        values = rng.normal(size=grid.num_points)
        assert np.allclose(operator.apply(values), operator.matrix @ values)

    def test_call_is_apply(self, rng):
        grid = UniformGrid(1.0, 5.0, 9)
        operator = NeumannLaplacian(grid)
        values = rng.normal(size=grid.num_points)
        assert np.allclose(operator(values), operator.apply(values))

    def test_rejects_wrong_length(self):
        operator = NeumannLaplacian(UniformGrid(0.0, 1.0, 11))
        with pytest.raises(ValueError):
            operator.apply(np.zeros(10))

    def test_grid_accessor(self):
        grid = UniformGrid(0.0, 1.0, 11)
        assert NeumannLaplacian(grid).grid is grid


@settings(max_examples=40, deadline=None)
@given(
    num_points=st.integers(3, 40),
    spacing=st.floats(0.01, 2.0),
    offset=st.floats(-50, 50),
)
def test_constant_shift_invariance(num_points, spacing, offset):
    """The Laplacian of u + c equals the Laplacian of u (discrete version)."""
    rng = np.random.default_rng(42)
    values = rng.normal(size=num_points)
    base = second_derivative(values, spacing)
    shifted = second_derivative(values + offset, spacing)
    assert np.allclose(base, shifted, atol=1e-6 / spacing**2 + 1e-8)


@settings(max_examples=40, deadline=None)
@given(num_points=st.integers(3, 30), spacing=st.floats(0.05, 1.0))
def test_discrete_integral_is_conserved(num_points, spacing):
    """No-flux boundaries conserve the discrete mean under the half-weighted
    trapezoid quadrature (endpoints carry half weight)."""
    rng = np.random.default_rng(7)
    values = rng.normal(size=num_points)
    flux = second_derivative(values, spacing)
    weights = np.ones(num_points)
    weights[0] = weights[-1] = 0.5
    assert np.dot(weights, flux) == pytest.approx(0.0, abs=1e-7 / spacing**2)
