"""Tests for the solver-backend registry and the batched solver engine."""

import numpy as np
import pytest

from repro.numerics.backends import (
    InternalBackend,
    ScipyBackend,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.numerics.grid import UniformGrid
from repro.numerics.integrators import RungeKutta4Integrator
from repro.numerics.operator_cache import cache_stats, clear_operator_caches
from repro.numerics.pde_solver import (
    BatchReactionDiffusionProblem,
    ReactionDiffusionSolver,
)


def dl_like_batch_problem(batch=6, num_points=21, seed=0):
    """A batch of DL-style logistic reaction problems with mixed d values."""
    grid = UniformGrid(1.0, 5.0, num_points)
    rng = np.random.default_rng(seed)
    initial_states = 2.0 + rng.random((num_points, batch))
    diffusion_rates = np.resize([0.01, 0.05, 0.02], batch)
    rates = rng.uniform(0.3, 1.2, batch)

    def reaction(states, positions, time):
        return rates[None, :] * states * (1.0 - states / 25.0)

    return BatchReactionDiffusionProblem(
        grid=grid,
        initial_states=initial_states,
        diffusion_rates=diffusion_rates,
        reaction=reaction,
        start_time=1.0,
    )


class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        assert "internal" in names
        assert "scipy" in names

    def test_unknown_backend_error_lists_registered(self):
        with pytest.raises(ValueError) as excinfo:
            get_backend("cuda")
        message = str(excinfo.value)
        assert "cuda" in message
        assert "'internal'" in message
        assert "'scipy'" in message

    def test_solver_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            ReactionDiffusionSolver(backend="nonexistent")

    def test_instance_passes_through(self):
        backend = InternalBackend()
        assert get_backend(backend) is backend

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            get_backend(42)

    def test_register_and_unregister_custom_backend(self):
        class EchoBackend(InternalBackend):
            name = "echo-test"

        register_backend("echo-test", EchoBackend)
        try:
            assert "echo-test" in available_backends()
            solver = ReactionDiffusionSolver(backend="echo-test")
            assert solver.backend == "echo-test"
        finally:
            unregister_backend("echo-test")
        assert "echo-test" not in available_backends()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_backend("internal", InternalBackend)

    def test_duplicate_registration_with_overwrite(self):
        register_backend("internal", InternalBackend, overwrite=True)
        assert get_backend("internal").name == "internal"

    def test_solver_accepts_backend_instance(self):
        solver = ReactionDiffusionSolver(backend=ScipyBackend())
        assert solver.backend == "scipy"


class TestBatchProblemValidation:
    def test_rejects_wrong_state_shape(self):
        grid = UniformGrid(1.0, 5.0, 21)
        with pytest.raises(ValueError):
            BatchReactionDiffusionProblem(
                grid, np.ones((5, 3)), np.ones(3) * 0.01, lambda u, x, t: u, 1.0
            )

    def test_rejects_mismatched_rates(self):
        grid = UniformGrid(1.0, 5.0, 21)
        with pytest.raises(ValueError):
            BatchReactionDiffusionProblem(
                grid, np.ones((21, 3)), np.ones(2) * 0.01, lambda u, x, t: u, 1.0
            )

    def test_rejects_nonpositive_rates(self):
        grid = UniformGrid(1.0, 5.0, 21)
        with pytest.raises(ValueError):
            BatchReactionDiffusionProblem(
                grid, np.ones((21, 3)), np.array([0.01, 0.0, 0.02]), lambda u, x, t: u, 1.0
            )


class TestBatchedEngine:
    def test_batch_matches_sequential_columns(self):
        problem = dl_like_batch_problem()
        solver = ReactionDiffusionSolver(max_step=0.05)
        times = [1.0, 2.0, 3.5, 5.0]
        batched = solver.solve_batch(problem, times)
        assert batched.batch_size == problem.batch_size
        for j in range(problem.batch_size):
            sequential = solver.solve(problem.column_problem(j), times)
            assert np.max(np.abs(batched.states[:, :, j] - sequential.states)) < 1e-10

    def test_batch_solution_column_extraction(self):
        problem = dl_like_batch_problem(batch=3)
        solver = ReactionDiffusionSolver(max_step=0.05)
        batched = solver.solve_batch(problem, [1.0, 2.0])
        column = batched.column(1)
        assert column.states.shape == (2, 21)
        assert np.allclose(column.states, batched.states[:, :, 1])
        assert column.metadata["batch_column"] == 1

    def test_initial_time_emitted_verbatim(self):
        problem = dl_like_batch_problem(batch=4)
        solver = ReactionDiffusionSolver(max_step=0.05)
        batched = solver.solve_batch(problem, [1.0, 3.0])
        assert np.allclose(batched.states[0], problem.initial_states)

    def test_metadata_reports_engine_and_groups(self):
        problem = dl_like_batch_problem(batch=6)
        solver = ReactionDiffusionSolver(max_step=0.05)
        batched = solver.solve_batch(problem, [2.0])
        assert batched.metadata["engine"] == "batched_crank_nicolson"
        assert batched.metadata["batch_size"] == 6
        assert batched.metadata["diffusion_groups"] == 3
        assert batched.metadata["steps"] > 0

    def test_scipy_fallback_solves_batch(self):
        problem = dl_like_batch_problem(batch=2)
        solver = ReactionDiffusionSolver(max_step=0.05, backend="scipy")
        batched = solver.solve_batch(problem, [1.0, 2.0, 3.0])
        assert batched.states.shape == (3, 21, 2)
        assert batched.metadata["engine"] == "sequential_fallback"

    def test_scipy_batch_agrees_with_internal_batch(self):
        problem = dl_like_batch_problem(batch=2)
        times = [1.0, 2.0, 3.0]
        internal = ReactionDiffusionSolver(max_step=0.01).solve_batch(problem, times)
        via_scipy = ReactionDiffusionSolver(max_step=0.05, backend="scipy").solve_batch(
            problem, times
        )
        assert np.allclose(internal.states, via_scipy.states, rtol=2e-3, atol=1e-4)

    def test_rk4_batch_falls_back_to_sequential(self):
        problem = dl_like_batch_problem(batch=2)
        solver = ReactionDiffusionSolver(
            integrator=RungeKutta4Integrator(), max_step=0.01
        )
        batched = solver.solve_batch(problem, [1.0, 1.5])
        assert batched.metadata["engine"] == "sequential_fallback"
        assert batched.states.shape == (2, 21, 2)


class TestOperatorCache:
    def test_repeated_solves_hit_the_operator_cache(self):
        clear_operator_caches()
        problem = dl_like_batch_problem(batch=4)
        solver = ReactionDiffusionSolver(max_step=0.05)
        solver.solve_batch(problem, [2.0])
        first = cache_stats()["crank_nicolson_operator"]
        solver.solve_batch(problem, [2.0])
        second = cache_stats()["crank_nicolson_operator"]
        assert second["misses"] == first["misses"]
        assert second["hits"] > first["hits"]

    def test_sequential_cn_solves_share_cache_with_batched(self):
        clear_operator_caches()
        problem = dl_like_batch_problem(batch=2)
        solver = ReactionDiffusionSolver(max_step=0.05)
        solver.solve_batch(problem, [2.0])
        misses_after_batch = cache_stats()["crank_nicolson_operator"]["misses"]
        solver.solve(problem.column_problem(0), [2.0])
        assert cache_stats()["crank_nicolson_operator"]["misses"] == misses_after_batch

    def test_cached_laplacian_is_read_only(self):
        from repro.numerics.finite_difference import NeumannLaplacian

        matrix = NeumannLaplacian(UniformGrid(0.0, 1.0, 11)).matrix
        with pytest.raises(ValueError):
            matrix[0, 0] = 1.0


class TestOperatorModes:
    def test_default_mode_is_banded(self):
        solver = ReactionDiffusionSolver(max_step=0.05)
        assert solver.operator == "banded"
        batched = solver.solve_batch(dl_like_batch_problem(batch=2), [2.0])
        assert batched.metadata["operator"] == "banded"

    @pytest.mark.parametrize("mode", ["dense", "banded", "thomas"])
    def test_explicit_mode_reported_in_metadata(self, mode):
        solver = ReactionDiffusionSolver(max_step=0.05, operator=mode)
        assert solver.operator == mode
        batched = solver.solve_batch(dl_like_batch_problem(batch=2), [2.0])
        assert batched.metadata["operator"] == mode

    @pytest.mark.parametrize("mode", ["banded", "thomas"])
    def test_modes_match_dense_reference(self, mode):
        problem = dl_like_batch_problem(batch=5)
        times = [1.0, 2.0, 4.0]
        dense = ReactionDiffusionSolver(max_step=0.05, operator="dense").solve_batch(
            problem, times
        )
        other = ReactionDiffusionSolver(max_step=0.05, operator=mode).solve_batch(
            problem, times
        )
        assert np.max(np.abs(other.states - dense.states)) < 1e-12

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ReactionDiffusionSolver(operator="sparse-qr")

    def test_mode_selection_rejected_for_scipy_backend(self):
        with pytest.raises(ValueError):
            ReactionDiffusionSolver(backend="scipy", operator="banded")

    def test_mode_selection_does_not_mutate_shared_backend_instance(self):
        shared = InternalBackend()
        first = ReactionDiffusionSolver(backend=shared)
        second = ReactionDiffusionSolver(backend=shared, operator="dense")
        assert second.operator == "dense"
        # The caller's instance (and any solver already holding it) is untouched.
        assert shared.operator_mode == "auto"
        assert first.operator == "banded"

    def test_scipy_backend_ignores_auto_mode(self):
        solver = ReactionDiffusionSolver(backend="scipy")
        assert solver.operator is None

    def test_thomas_backend_registered(self):
        assert "thomas" in available_backends()
        solver = ReactionDiffusionSolver(backend="thomas")
        assert solver.backend == "thomas"
        assert solver.operator == "thomas"

    def test_thomas_backend_matches_internal(self):
        problem = dl_like_batch_problem(batch=3)
        times = [1.0, 3.0]
        internal = ReactionDiffusionSolver(max_step=0.05).solve_batch(problem, times)
        thomas = ReactionDiffusionSolver(max_step=0.05, backend="thomas").solve_batch(
            problem, times
        )
        assert np.max(np.abs(internal.states - thomas.states)) < 1e-12

    def test_single_solve_metadata_reports_operator(self):
        problem = dl_like_batch_problem(batch=2).column_problem(0)
        solution = ReactionDiffusionSolver(max_step=0.05).solve(problem, [2.0])
        assert solution.metadata["operator"] == "banded"
