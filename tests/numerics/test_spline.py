"""Tests for repro.numerics.spline (cubic splines and the phi interpolator)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numerics.spline import CubicSpline, FlatEndDensityInterpolator


class TestCubicSplineConstruction:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            CubicSpline([1, 2, 3], [1, 2])

    def test_rejects_single_knot(self):
        with pytest.raises(ValueError):
            CubicSpline([1], [1])

    def test_rejects_non_increasing_knots(self):
        with pytest.raises(ValueError):
            CubicSpline([1, 1, 2], [0, 1, 2])
        with pytest.raises(ValueError):
            CubicSpline([1, 3, 2], [0, 1, 2])

    def test_rejects_unknown_end_condition(self):
        with pytest.raises(ValueError):
            CubicSpline([1, 2, 3], [1, 2, 3], end_condition="periodic")

    def test_knots_and_values_are_copies(self):
        spline = CubicSpline([1, 2, 3], [4, 5, 6])
        knots = spline.knots
        knots[0] = 99
        assert spline.knots[0] == 1


class TestCubicSplineInterpolation:
    def test_passes_through_knots(self):
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        y = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
        spline = CubicSpline(x, y)
        assert np.allclose(spline(x), y, atol=1e-12)

    def test_reproduces_straight_line_exactly(self):
        x = np.linspace(0, 10, 6)
        y = 2.5 * x + 1.0
        spline = CubicSpline(x, y)
        sample = np.linspace(0, 10, 101)
        assert np.allclose(spline(sample), 2.5 * sample + 1.0, atol=1e-10)

    def test_natural_end_conditions(self):
        spline = CubicSpline([1, 2, 3, 4], [2, 5, 3, 7], end_condition="natural")
        assert spline.second_derivative(1.0) == pytest.approx(0.0, abs=1e-10)
        assert spline.second_derivative(4.0) == pytest.approx(0.0, abs=1e-10)

    def test_clamped_end_conditions(self):
        spline = CubicSpline(
            [1, 2, 3, 4], [2, 5, 3, 7], end_condition="clamped", start_slope=0.0, end_slope=0.0
        )
        assert spline.derivative(1.0) == pytest.approx(0.0, abs=1e-10)
        assert spline.derivative(4.0) == pytest.approx(0.0, abs=1e-10)

    def test_clamped_nonzero_slopes(self):
        spline = CubicSpline(
            [0, 1, 2], [0, 1, 4], end_condition="clamped", start_slope=-1.0, end_slope=2.5
        )
        assert spline.derivative(0.0) == pytest.approx(-1.0, abs=1e-10)
        assert spline.derivative(2.0) == pytest.approx(2.5, abs=1e-10)

    def test_scalar_and_array_evaluation_agree(self):
        spline = CubicSpline([1, 2, 3, 4], [2, 5, 3, 7])
        xs = np.array([1.3, 2.7, 3.9])
        array_result = spline(xs)
        for x, expected in zip(xs, array_result):
            assert spline(float(x)) == pytest.approx(expected)

    def test_matches_scipy_natural_spline(self):
        from scipy.interpolate import CubicSpline as ScipySpline

        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        y = np.array([0.0, 2.3, 1.7, 4.1, 3.3, 5.0])
        ours = CubicSpline(x, y, end_condition="natural")
        scipys = ScipySpline(x, y, bc_type="natural")
        sample = np.linspace(1, 6, 201)
        assert np.allclose(ours(sample), scipys(sample), atol=1e-9)

    def test_matches_scipy_clamped_spline(self):
        from scipy.interpolate import CubicSpline as ScipySpline

        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        y = np.array([1.0, 3.0, 2.0, 5.0, 4.0])
        ours = CubicSpline(x, y, end_condition="clamped", start_slope=0.0, end_slope=0.0)
        scipys = ScipySpline(x, y, bc_type=((1, 0.0), (1, 0.0)))
        sample = np.linspace(1, 5, 201)
        assert np.allclose(ours(sample), scipys(sample), atol=1e-9)

    def test_two_knot_natural_spline_is_linear(self):
        spline = CubicSpline([0, 2], [1, 5], end_condition="natural")
        assert spline(1.0) == pytest.approx(3.0)
        assert spline.second_derivative(1.0) == pytest.approx(0.0, abs=1e-12)


class TestCubicSplineDerivatives:
    def test_first_derivative_by_finite_differences(self):
        spline = CubicSpline([1, 2, 3, 4, 5], [3, 1, 4, 1, 5])
        h = 1e-6
        for x in (1.5, 2.5, 3.5, 4.5):
            numeric = (spline(x + h) - spline(x - h)) / (2 * h)
            assert spline.derivative(x) == pytest.approx(numeric, rel=1e-4)

    def test_second_derivative_by_finite_differences(self):
        spline = CubicSpline([1, 2, 3, 4, 5], [3, 1, 4, 1, 5])
        h = 1e-4
        for x in (1.5, 2.5, 3.5):
            numeric = (spline(x + h) - 2 * spline(x) + spline(x - h)) / h**2
            assert spline.second_derivative(x) == pytest.approx(numeric, rel=1e-3)

    def test_second_derivative_continuous_at_knots(self):
        spline = CubicSpline([1, 2, 3, 4, 5], [3, 1, 4, 1, 5])
        for knot in (2.0, 3.0, 4.0):
            left = spline.second_derivative(knot - 1e-9)
            right = spline.second_derivative(knot + 1e-9)
            assert left == pytest.approx(right, abs=1e-5)

    def test_third_derivative_piecewise_constant(self):
        spline = CubicSpline([1, 2, 3, 4], [1, 4, 2, 3])
        assert spline.evaluate(1.2, derivative=3) == pytest.approx(
            spline.evaluate(1.8, derivative=3)
        )

    def test_fourth_derivative_is_zero(self):
        spline = CubicSpline([1, 2, 3, 4], [1, 4, 2, 3])
        assert spline.evaluate(2.5, derivative=4) == 0.0

    def test_negative_derivative_order_rejected(self):
        spline = CubicSpline([1, 2, 3], [1, 2, 3])
        with pytest.raises(ValueError):
            spline.evaluate(1.5, derivative=-1)


class TestFlatEndDensityInterpolator:
    def test_flat_ends(self):
        phi = FlatEndDensityInterpolator([1, 2, 3, 4, 5], [5.0, 2.0, 2.5, 1.0, 0.5])
        assert phi.derivative(1.0) == pytest.approx(0.0, abs=1e-10)
        assert phi.derivative(5.0) == pytest.approx(0.0, abs=1e-10)

    def test_interpolates_observations(self):
        distances = [1, 2, 3, 4, 5]
        densities = [5.0, 2.0, 2.5, 1.0, 0.5]
        phi = FlatEndDensityInterpolator(distances, densities)
        assert np.allclose(phi(np.array(distances, dtype=float)), densities, atol=1e-10)

    def test_never_negative(self):
        # A steep drop can make a raw cubic spline overshoot below zero.
        phi = FlatEndDensityInterpolator([1, 2, 3, 4, 5], [10.0, 0.05, 0.02, 0.01, 0.0001])
        sample = np.linspace(1, 5, 500)
        assert np.all(phi(sample) >= 0.0)

    def test_rejects_negative_densities(self):
        with pytest.raises(ValueError):
            FlatEndDensityInterpolator([1, 2, 3], [1.0, -0.5, 2.0])

    def test_rejects_all_zero_densities(self):
        with pytest.raises(ValueError):
            FlatEndDensityInterpolator([1, 2, 3], [0.0, 0.0, 0.0])

    def test_sample_matches_call(self):
        phi = FlatEndDensityInterpolator([1, 2, 3, 4], [4.0, 3.0, 2.0, 1.0])
        nodes = np.linspace(1, 4, 31)
        assert np.allclose(phi.sample(nodes), phi(nodes))

    def test_bounds_accessors(self):
        phi = FlatEndDensityInterpolator([2, 3, 4, 6], [1.0, 2.0, 3.0, 1.0])
        assert phi.lower == 2.0
        assert phi.upper == 6.0


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(st.floats(0.0, 100.0), min_size=3, max_size=10),
)
def test_spline_interpolates_arbitrary_knot_values(values):
    x = np.arange(1.0, len(values) + 1.0)
    spline = CubicSpline(x, values)
    assert np.allclose(spline(x), values, atol=1e-8)


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(st.floats(0.01, 50.0), min_size=2, max_size=8),
)
def test_flat_end_interpolator_is_nonnegative_and_flat(values):
    x = np.arange(1.0, len(values) + 1.0)
    phi = FlatEndDensityInterpolator(x, values)
    sample = np.linspace(x[0], x[-1], 101)
    assert np.all(np.asarray(phi(sample)) >= 0.0)
    assert abs(phi.derivative(x[0])) < 1e-8
    assert abs(phi.derivative(x[-1])) < 1e-8
