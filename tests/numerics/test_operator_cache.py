"""Tests for the (grid, dt, d) operator cache and its factorization modes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.finite_difference import laplacian_matrix, laplacian_tridiagonal
from repro.numerics.operator_cache import (
    OPERATOR_MODES,
    BandedFactorization,
    ThomasFactorization,
    cache_stats,
    clear_operator_caches,
    crank_nicolson_factor,
    crank_nicolson_operator,
    neumann_laplacian_matrix,
    neumann_laplacian_tridiagonal,
)


def dense_lhs(num_points, spacing, dt, diffusion_rate):
    """Reference Crank-Nicolson matrix ``I - dt/2 * d * A`` built densely."""
    laplacian = laplacian_matrix(num_points, spacing)
    return np.eye(num_points) - 0.5 * dt * diffusion_rate * laplacian


class TestCacheReuseAndEviction:
    def test_same_key_reuses_the_factorization(self):
        clear_operator_caches()
        first = crank_nicolson_operator(21, 0.1, 0.02, 0.05)
        second = crank_nicolson_operator(21, 0.1, 0.02, 0.05)
        assert first is second
        stats = cache_stats()["crank_nicolson_operator"]
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    @pytest.mark.parametrize(
        "other_key",
        [
            dict(num_points=22, spacing=0.1, dt=0.02, diffusion_rate=0.05),
            dict(num_points=21, spacing=0.2, dt=0.02, diffusion_rate=0.05),
            dict(num_points=21, spacing=0.1, dt=0.01, diffusion_rate=0.05),
            dict(num_points=21, spacing=0.1, dt=0.02, diffusion_rate=0.01),
        ],
    )
    def test_each_component_of_the_key_matters(self, other_key):
        clear_operator_caches()
        base = crank_nicolson_operator(21, 0.1, 0.02, 0.05)
        other = crank_nicolson_operator(**other_key)
        assert base is not other
        assert cache_stats()["crank_nicolson_operator"]["misses"] == 2

    def test_modes_are_distinct_cache_entries(self):
        clear_operator_caches()
        entries = {mode: crank_nicolson_operator(15, 0.1, 0.02, 0.05, mode) for mode in OPERATOR_MODES}
        assert len({id(entry) for entry in entries.values()}) == len(OPERATOR_MODES)
        for mode, entry in entries.items():
            assert entry.mode == mode

    def test_cache_evicts_beyond_maxsize(self):
        clear_operator_caches()
        maxsize = cache_stats()["crank_nicolson_operator"]["maxsize"]
        first = crank_nicolson_operator(5, 0.1, 0.02, 1.0e-6)
        # Fill the cache past its capacity with distinct diffusion rates.
        for k in range(maxsize):
            crank_nicolson_operator(5, 0.1, 0.02, 0.01 * (k + 1))
        stats = cache_stats()["crank_nicolson_operator"]
        assert stats["currsize"] == maxsize
        # The first entry was evicted, so asking again is a fresh miss.
        misses_before = stats["misses"]
        renewed = crank_nicolson_operator(5, 0.1, 0.02, 1.0e-6)
        assert renewed is not first
        assert cache_stats()["crank_nicolson_operator"]["misses"] == misses_before + 1

    def test_clear_resets_every_cache(self):
        crank_nicolson_operator(9, 0.1, 0.02, 0.05)
        neumann_laplacian_matrix(9, 0.1)
        neumann_laplacian_tridiagonal(9, 0.1)
        crank_nicolson_factor(9, 0.1, 0.02, 0.05)
        clear_operator_caches()
        for stats in cache_stats().values():
            assert stats["currsize"] == 0

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            crank_nicolson_operator(9, 0.1, 0.0, 0.05)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            crank_nicolson_operator(9, 0.1, 0.02, 0.05, "cholesky")


class TestBandedEquivalence:
    def test_tridiagonal_bands_match_dense_matrix(self):
        sub, diag, sup = neumann_laplacian_tridiagonal(13, 0.25)
        dense = neumann_laplacian_matrix(13, 0.25)
        rebuilt = np.diag(diag) + np.diag(sub, -1) + np.diag(sup, 1)
        assert np.array_equal(rebuilt, dense)

    def test_cached_bands_are_read_only(self):
        for band in neumann_laplacian_tridiagonal(13, 0.25):
            with pytest.raises(ValueError):
                band[0] = 1.0

    @pytest.mark.parametrize("mode", ["banded", "thomas"])
    @pytest.mark.parametrize("num_points", [2, 3, 17, 64])
    def test_modes_match_dense_solve_on_neumann_boundaries(self, mode, num_points):
        """The Neumann ghost nodes make the boundary rows nonsymmetric; the
        banded/Thomas paths must reproduce the dense solution there too."""
        spacing, dt, diffusion = 0.31, 0.04, 0.07
        rng = np.random.default_rng(num_points)
        rhs = rng.normal(size=(num_points, 3))
        expected = np.linalg.solve(dense_lhs(num_points, spacing, dt, diffusion), rhs)
        operator = crank_nicolson_operator(num_points, spacing, dt, diffusion, mode)
        assert np.max(np.abs(operator.solve(rhs) - expected)) < 1e-12
        # Single right-hand sides take the same path as column blocks.
        assert np.max(np.abs(operator.solve(rhs[:, 0]) - expected[:, 0])) < 1e-12

    def test_dense_mode_shares_the_legacy_factor_cache(self):
        clear_operator_caches()
        crank_nicolson_operator(11, 0.1, 0.02, 0.05, "dense")
        assert cache_stats()["crank_nicolson_factor"]["misses"] == 1

    def test_banded_factor_is_small(self):
        num_points = 2000
        dense = crank_nicolson_operator(num_points, 0.05, 0.02, 0.05, "dense")
        banded = crank_nicolson_operator(num_points, 0.05, 0.02, 0.05, "banded")
        thomas = crank_nicolson_operator(num_points, 0.05, 0.02, 0.05, "thomas")
        assert dense.nbytes > num_points**2 * 8  # O(n^2)
        assert banded.nbytes < num_points * 8 * 8  # O(n)
        assert thomas.nbytes < num_points * 8 * 8
        clear_operator_caches()


class TestThomasFactorization:
    def test_rejects_mismatched_band_lengths(self):
        with pytest.raises(ValueError):
            ThomasFactorization(np.ones(3), np.ones(3), np.ones(2))

    def test_rejects_singular_matrix(self):
        # diag chosen so the first pivot eliminates to zero.
        with pytest.raises(np.linalg.LinAlgError):
            ThomasFactorization(np.array([1.0]), np.array([1.0, 1.0]), np.array([1.0]))

    @given(
        n=st.integers(min_value=2, max_value=40),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_numpy_solve_on_diagonally_dominant_systems(self, n, seed):
        """Property test: Thomas output equals np.linalg.solve on random
        strictly diagonally dominant tridiagonal systems (where the
        pivot-free elimination is provably stable)."""
        rng = np.random.default_rng(seed)
        sub = rng.uniform(-1.0, 1.0, n - 1)
        sup = rng.uniform(-1.0, 1.0, n - 1)
        off_row_sums = np.zeros(n)
        off_row_sums[1:] += np.abs(sub)
        off_row_sums[:-1] += np.abs(sup)
        sign = np.where(rng.random(n) < 0.5, -1.0, 1.0)
        diag = sign * (off_row_sums + rng.uniform(0.5, 2.0, n))
        matrix = np.diag(diag)
        matrix += np.diag(sub, -1) + np.diag(sup, 1)
        rhs = rng.normal(size=n)

        solution = ThomasFactorization(sub, diag, sup).solve(rhs)
        expected = np.linalg.solve(matrix, rhs)
        scale = np.max(np.abs(expected)) + 1.0
        assert np.max(np.abs(solution - expected)) < 1e-9 * scale

    def test_banded_factorization_agrees_with_thomas(self):
        rng = np.random.default_rng(7)
        n = 31
        sub = rng.uniform(-0.3, 0.3, n - 1)
        sup = rng.uniform(-0.3, 0.3, n - 1)
        diag = 1.0 + np.abs(sub).sum() + rng.uniform(0.5, 1.0, n)
        rhs = rng.normal(size=(n, 4))
        banded = BandedFactorization(sub, diag, sup).solve(rhs)
        thomas = ThomasFactorization(sub, diag, sup).solve(rhs)
        assert np.max(np.abs(banded - thomas)) < 1e-11
