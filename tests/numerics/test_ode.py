"""Tests for the logistic ODE utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numerics.ode import (
    LogisticCurve,
    fit_logistic_curve,
    fit_logistic_curves,
    solve_logistic_ode,
)


class TestLogisticCurve:
    def test_initial_value_respected(self):
        curve = LogisticCurve(0.5, 10.0, 2.0, initial_time=1.0)
        assert curve(1.0) == pytest.approx(2.0)

    def test_monotone_increasing_towards_capacity(self):
        curve = LogisticCurve(0.8, 10.0, 1.0)
        times = np.linspace(0, 20, 100)
        values = curve(times)
        assert np.all(np.diff(values) > 0)
        assert values[-1] < 10.0
        assert values[-1] == pytest.approx(10.0, abs=1e-3)

    def test_satisfies_the_ode(self):
        curve = LogisticCurve(0.7, 12.0, 3.0)
        h = 1e-6
        for t in (0.5, 2.0, 5.0):
            numeric = (curve(t + h) - curve(t - h)) / (2 * h)
            assert curve.derivative(t) == pytest.approx(numeric, rel=1e-5)

    def test_above_capacity_decays_to_capacity(self):
        curve = LogisticCurve(0.5, 10.0, 15.0)
        assert curve(30.0) == pytest.approx(10.0, abs=1e-4)
        assert curve(1.0) < 15.0

    def test_inflection_at_half_capacity(self):
        curve = LogisticCurve(0.9, 10.0, 0.5)
        assert curve(curve.inflection_time) == pytest.approx(5.0, rel=1e-9)

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            LogisticCurve(0.5, 0.0, 1.0)
        with pytest.raises(ValueError):
            LogisticCurve(0.5, 10.0, 0.0)

    def test_numpy_scalar_input_returns_python_float(self):
        # Regression: np.isscalar(np.float64(...)) is False, so numpy scalars
        # used to come back as 0-d arrays instead of floats.
        curve = LogisticCurve(0.5, 10.0, 2.0, initial_time=1.0)
        for scalar in (np.float64(2.0), np.float32(2.0), np.array(2.0)):
            value = curve(scalar)
            assert type(value) is float
            assert value == pytest.approx(curve(2.0))

    def test_array_input_still_returns_array(self):
        curve = LogisticCurve(0.5, 10.0, 2.0)
        values = curve(np.array([1.0, 2.0]))
        assert isinstance(values, np.ndarray)
        assert values.shape == (2,)


class TestSolveLogisticODE:
    def test_matches_analytic_solution_constant_rate(self):
        times = np.linspace(1.0, 10.0, 19)
        numeric = solve_logistic_ode(2.0, times, growth_rate=0.6, carrying_capacity=15.0)
        analytic = LogisticCurve(0.6, 15.0, 2.0, initial_time=1.0)(times)
        assert np.allclose(numeric, analytic, rtol=1e-6)

    def test_time_dependent_rate_slows_growth(self):
        times = np.linspace(1.0, 10.0, 10)
        constant = solve_logistic_ode(1.0, times, 1.0, 20.0)
        decaying = solve_logistic_ode(1.0, times, lambda t: np.exp(-(t - 1.0)), 20.0)
        assert decaying[-1] < constant[-1]

    def test_paper_growth_rate_function(self):
        def rate(t):
            return 1.4 * np.exp(-1.5 * (t - 1.0)) + 0.25

        times = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        values = solve_logistic_ode(5.0, times, rate, 25.0)
        assert values[0] == 5.0
        assert np.all(np.diff(values) > 0)
        assert values[-1] < 25.0

    def test_zero_span_repeats_value(self):
        values = solve_logistic_ode(3.0, [1.0, 1.0, 2.0], 0.5, 10.0)
        assert values[0] == values[1] == 3.0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            solve_logistic_ode(1.0, [], 0.5, 10.0)
        with pytest.raises(ValueError):
            solve_logistic_ode(1.0, [2.0, 1.0], 0.5, 10.0)
        with pytest.raises(ValueError):
            solve_logistic_ode(1.0, [1.0, 2.0], 0.5, -1.0)
        with pytest.raises(ValueError):
            solve_logistic_ode(1.0, [1.0, 2.0], 0.5, 10.0, steps_per_unit=0)

    def test_rejects_any_nonpositive_batched_capacity(self):
        with pytest.raises(ValueError):
            solve_logistic_ode([1.0, 1.0], [1.0, 2.0], 0.5, np.array([10.0, 0.0]))


class TestBatchedSolveLogisticODE:
    def test_batch_matches_per_trajectory_solves(self):
        times = np.linspace(1.0, 8.0, 15)
        initial = np.array([1.0, 2.0, 0.5])
        rates = np.array([0.4, 0.8, 1.2])
        capacities = np.array([10.0, 20.0, 5.0])
        batched = solve_logistic_ode(initial, times, rates, capacities)
        assert batched.shape == (times.size, 3)
        for j in range(3):
            single = solve_logistic_ode(
                float(initial[j]), times, float(rates[j]), float(capacities[j])
            )
            assert np.allclose(batched[:, j], single, rtol=1e-12, atol=1e-12)

    def test_scalar_inputs_keep_flat_output_shape(self):
        values = solve_logistic_ode(2.0, [1.0, 2.0, 3.0], 0.5, 10.0)
        assert values.shape == (3,)

    def test_time_dependent_rate_broadcasts_over_batch(self):
        times = np.linspace(1.0, 6.0, 11)
        batched = solve_logistic_ode(
            np.array([1.0, 3.0]), times, lambda t: np.exp(-(t - 1.0)), 20.0
        )
        assert batched.shape == (times.size, 2)
        for j, start in enumerate((1.0, 3.0)):
            single = solve_logistic_ode(start, times, lambda t: np.exp(-(t - 1.0)), 20.0)
            assert np.allclose(batched[:, j], single, rtol=1e-12)

    def test_per_trajectory_rate_callable(self):
        times = np.linspace(0.0, 5.0, 11)
        rates = np.array([0.5, 1.5])

        def rate(t):
            return rates * np.exp(-0.1 * t)

        batched = solve_logistic_ode(np.array([1.0, 1.0]), times, rate, 10.0)
        assert batched.shape == (times.size, 2)
        assert batched[-1, 1] > batched[-1, 0]

    def test_batched_callable_rate_widens_scalar_inputs(self):
        # Regression: the batch shape used to ignore a callable's output
        # shape, crashing when only the rate was per-trajectory.
        values = solve_logistic_ode(1.0, [1.0, 2.0], lambda t: np.array([0.5, 1.5]), 10.0)
        assert values.shape == (2, 2)
        assert values[-1, 1] > values[-1, 0]


class TestFitLogisticCurve:
    def test_recovers_known_parameters(self):
        truth = LogisticCurve(0.75, 18.0, 2.0, initial_time=1.0)
        times = np.linspace(1.0, 12.0, 23)
        fitted = fit_logistic_curve(times, truth(times))
        assert fitted.growth_rate == pytest.approx(0.75, rel=1e-3)
        assert fitted.carrying_capacity == pytest.approx(18.0, rel=1e-3)

    def test_robust_to_small_noise(self):
        rng = np.random.default_rng(11)
        truth = LogisticCurve(0.5, 10.0, 1.0)
        times = np.linspace(0.0, 15.0, 31)
        noisy = np.clip(truth(times) + rng.normal(0, 0.05, times.size), 0.01, None)
        noisy[0] = 1.0
        fitted = fit_logistic_curve(times, noisy)
        assert fitted.growth_rate == pytest.approx(0.5, rel=0.15)
        assert fitted.carrying_capacity == pytest.approx(10.0, rel=0.1)

    def test_requires_three_points(self):
        with pytest.raises(ValueError):
            fit_logistic_curve([1.0, 2.0], [1.0, 2.0])

    def test_requires_positive_first_observation(self):
        with pytest.raises(ValueError):
            fit_logistic_curve([1.0, 2.0, 3.0], [0.0, 1.0, 2.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_logistic_curve([1.0, 2.0, 3.0], [1.0, 2.0])


class TestFitLogisticCurves:
    def test_recovers_known_parameters_per_column(self):
        times = np.linspace(1.0, 12.0, 23)
        truths = [
            LogisticCurve(0.75, 18.0, 2.0, initial_time=1.0),
            LogisticCurve(0.4, 8.0, 1.0, initial_time=1.0),
        ]
        observations = np.column_stack([np.asarray(t(times)) for t in truths])
        fitted = fit_logistic_curves(times, observations)
        assert len(fitted) == 2
        for curve, truth in zip(fitted, truths):
            assert curve.growth_rate == pytest.approx(truth.growth_rate, rel=1e-3)
            assert curve.carrying_capacity == pytest.approx(truth.carrying_capacity, rel=1e-3)

    def test_matches_independent_fits(self):
        times = np.linspace(1.0, 10.0, 19)
        rng = np.random.default_rng(5)
        truths = [LogisticCurve(r, k, 1.5, initial_time=1.0) for r, k in ((0.6, 12.0), (1.0, 25.0))]
        observations = np.column_stack(
            [np.clip(np.asarray(t(times)) + rng.normal(0, 0.02, times.size), 0.05, None) for t in truths]
        )
        observations[0] = [1.5, 1.5]
        joint = fit_logistic_curves(times, observations)
        for j, curve in enumerate(joint):
            independent = fit_logistic_curve(times, observations[:, j])
            assert curve.growth_rate == pytest.approx(independent.growth_rate, rel=1e-2)
            assert curve.carrying_capacity == pytest.approx(
                independent.carrying_capacity, rel=1e-2
            )

    def test_rejects_nonpositive_first_observation(self):
        times = np.array([1.0, 2.0, 3.0])
        observations = np.array([[1.0, 0.0], [2.0, 1.0], [3.0, 2.0]])
        with pytest.raises(ValueError):
            fit_logistic_curves(times, observations)

    def test_rejects_wrong_shapes(self):
        with pytest.raises(ValueError):
            fit_logistic_curves([1.0, 2.0, 3.0], np.ones(3))
        with pytest.raises(ValueError):
            fit_logistic_curves([1.0, 2.0], np.ones((2, 2)))

    def test_raises_on_nonconvergence(self, monkeypatch):
        # curve_fit raises on non-convergence; the joint fit must mirror that
        # so the logistic baseline's per-column fallback still triggers.
        from repro.numerics.optimization import FitResult

        def failing_fit(*args, **kwargs):
            return FitResult(
                parameters=np.zeros(4), loss=np.inf, success=False, message="no convergence"
            )

        monkeypatch.setattr(
            "repro.numerics.optimization.least_squares_fit", failing_fit
        )
        times = np.linspace(1.0, 6.0, 6)
        observations = np.ones((6, 2))
        with pytest.raises(RuntimeError):
            fit_logistic_curves(times, observations)


@settings(max_examples=50, deadline=None)
@given(
    rate=st.floats(0.05, 3.0),
    capacity=st.floats(1.0, 100.0),
    start_fraction=st.floats(0.01, 0.99),
)
def test_logistic_curve_stays_within_bounds(rate, capacity, start_fraction):
    curve = LogisticCurve(rate, capacity, start_fraction * capacity)
    times = np.linspace(0, 50, 100)
    values = np.asarray(curve(times))
    assert np.all(values > 0)
    assert np.all(values <= capacity + 1e-9)
    assert np.all(np.diff(values) >= -1e-12)
