"""Tests for the method-of-lines reaction-diffusion solver."""

import numpy as np
import pytest

from repro.numerics.grid import UniformGrid
from repro.numerics.integrators import RungeKutta4Integrator
from repro.numerics.pde_solver import (
    PDESolution,
    ReactionDiffusionProblem,
    ReactionDiffusionSolver,
)


def no_reaction(u, x, t):
    return np.zeros_like(u)


def make_heat_problem(num_points=61, diffusion=0.05):
    grid = UniformGrid(0.0, 1.0, num_points)

    def initial(x):
        return np.cos(np.pi * x) + 1.0

    return ReactionDiffusionProblem(
        grid=grid,
        initial_condition=initial,
        diffusion=diffusion,
        reaction=no_reaction,
        start_time=0.0,
    )


class TestProblem:
    def test_initial_state_from_callable(self):
        problem = make_heat_problem()
        state = problem.initial_state()
        assert state.shape == (61,)
        assert state[0] == pytest.approx(2.0)

    def test_initial_state_from_array(self):
        grid = UniformGrid(0.0, 1.0, 5)
        values = np.array([1.0, 2.0, 3.0, 2.0, 1.0])
        problem = ReactionDiffusionProblem(grid, values, 0.1, no_reaction)
        assert np.allclose(problem.initial_state(), values)
        # The problem must not alias the caller's array.
        problem.initial_state()[0] = 99.0
        assert values[0] == 1.0

    def test_initial_state_shape_mismatch(self):
        grid = UniformGrid(0.0, 1.0, 5)
        problem = ReactionDiffusionProblem(grid, np.zeros(4), 0.1, no_reaction)
        with pytest.raises(ValueError):
            problem.initial_state()

    def test_constant_diffusion(self):
        problem = make_heat_problem(diffusion=0.07)
        assert problem.diffusion_is_constant
        assert np.allclose(problem.diffusion_at(3.0), 0.07)

    def test_variable_diffusion(self):
        grid = UniformGrid(0.0, 1.0, 11)

        def diffusion(x, t):
            return 0.01 + 0.1 * x

        problem = ReactionDiffusionProblem(grid, np.ones(11), diffusion, no_reaction)
        assert not problem.diffusion_is_constant
        values = problem.diffusion_at(0.0)
        assert values[0] == pytest.approx(0.01)
        assert values[-1] == pytest.approx(0.11)


class TestPDESolution:
    def _solution(self):
        grid = UniformGrid(1.0, 5.0, 5)
        times = np.array([1.0, 2.0, 3.0])
        states = np.array([[1, 2, 3, 4, 5], [2, 3, 4, 5, 6], [3, 4, 5, 6, 7]], dtype=float)
        return PDESolution(grid=grid, times=times, states=states)

    def test_at_time(self):
        solution = self._solution()
        assert np.allclose(solution.at_time(2.0), [2, 3, 4, 5, 6])

    def test_at_time_missing_raises(self):
        with pytest.raises(ValueError):
            self._solution().at_time(2.5)

    def test_sample_interpolates_in_space(self):
        solution = self._solution()
        assert solution.sample([1.5], 1.0)[0] == pytest.approx(1.5)

    def test_sample_surface_shape(self):
        surface = self._solution().sample_surface([1.0, 3.0, 5.0])
        assert surface.shape == (3, 3)
        assert surface[0, 2] == pytest.approx(5.0)

    def test_final_state(self):
        assert np.allclose(self._solution().final_state, [3, 4, 5, 6, 7])

    def test_shape_validation(self):
        grid = UniformGrid(1.0, 5.0, 5)
        with pytest.raises(ValueError):
            PDESolution(grid=grid, times=np.array([1.0]), states=np.zeros((2, 5)))


class TestHeatEquation:
    """Pure diffusion with Neumann boundaries has two analytic touchstones:
    the cos(pi x) mode decays exponentially, and the spatial mean is conserved."""

    @pytest.mark.parametrize("backend", ["internal", "scipy"])
    def test_cosine_mode_decay(self, backend):
        problem = make_heat_problem()
        solver = ReactionDiffusionSolver(max_step=0.01, backend=backend)
        solution = solver.solve(problem, [0.0, 1.0, 2.0])
        nodes = problem.grid.nodes
        for t in (1.0, 2.0):
            expected = np.cos(np.pi * nodes) * np.exp(-0.05 * np.pi**2 * t) + 1.0
            assert np.allclose(solution.at_time(t), expected, atol=5e-3)

    def test_mean_is_conserved(self):
        problem = make_heat_problem()
        solver = ReactionDiffusionSolver(max_step=0.01)
        solution = solver.solve(problem, [0.0, 3.0])
        weights = np.ones(problem.grid.num_points)
        weights[0] = weights[-1] = 0.5
        initial_mean = np.dot(weights, solution.at_time(0.0))
        final_mean = np.dot(weights, solution.at_time(3.0))
        assert final_mean == pytest.approx(initial_mean, rel=1e-4)

    def test_converges_to_uniform_profile(self):
        problem = make_heat_problem(diffusion=0.5)
        solver = ReactionDiffusionSolver(max_step=0.02)
        solution = solver.solve(problem, [50.0])
        final = solution.final_state
        assert np.max(final) - np.min(final) < 1e-3


class TestLogisticReaction:
    """A spatially uniform initial condition with logistic reaction must follow
    the scalar logistic ODE exactly (diffusion of a constant is zero)."""

    @pytest.mark.parametrize("backend", ["internal", "scipy"])
    def test_uniform_profile_follows_logistic(self, backend):
        grid = UniformGrid(1.0, 5.0, 41)
        r, K, u0 = 0.9, 20.0, 2.0

        def reaction(u, x, t):
            return r * u * (1.0 - u / K)

        problem = ReactionDiffusionProblem(grid, np.full(41, u0), 0.01, reaction, start_time=1.0)
        solver = ReactionDiffusionSolver(max_step=0.02, backend=backend)
        solution = solver.solve(problem, [1.0, 3.0, 6.0])
        for t in (3.0, 6.0):
            expected = K / (1.0 + (K / u0 - 1.0) * np.exp(-r * (t - 1.0)))
            assert np.allclose(solution.at_time(t), expected, rtol=1e-3)


class TestSolverConfiguration:
    def test_rejects_bad_max_step(self):
        with pytest.raises(ValueError):
            ReactionDiffusionSolver(max_step=0.0)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            ReactionDiffusionSolver(backend="cuda")

    def test_requires_output_times(self):
        solver = ReactionDiffusionSolver()
        with pytest.raises(ValueError):
            solver.solve(make_heat_problem(), [])

    def test_rejects_output_before_start(self):
        solver = ReactionDiffusionSolver()
        problem = make_heat_problem()
        with pytest.raises(ValueError):
            solver.solve(problem, [-1.0, 1.0])

    def test_initial_time_included_verbatim(self):
        solver = ReactionDiffusionSolver(max_step=0.05)
        problem = make_heat_problem()
        solution = solver.solve(problem, [0.0, 0.5])
        assert np.allclose(solution.at_time(0.0), problem.initial_state())

    def test_metadata_records_backend_and_integrator(self):
        solver = ReactionDiffusionSolver(integrator=RungeKutta4Integrator(), max_step=0.02)
        solution = solver.solve(make_heat_problem(), [0.0, 0.1])
        assert solution.metadata["backend"] == "internal"
        assert solution.metadata["integrator"] == "rk4"
        assert solution.metadata["steps"] > 0

    def test_duplicate_output_times_deduplicated(self):
        solver = ReactionDiffusionSolver(max_step=0.05)
        solution = solver.solve(make_heat_problem(), [0.0, 1.0, 1.0, 0.0])
        assert solution.times.size == 2


class TestBackendAgreement:
    def test_internal_and_scipy_agree_on_dl_like_problem(self):
        grid = UniformGrid(1.0, 5.0, 41)
        rng = np.random.default_rng(3)
        initial = 2.0 + rng.random(41)

        def reaction(u, x, t):
            rate = 1.4 * np.exp(-1.5 * (t - 1.0)) + 0.25
            return rate * u * (1.0 - u / 25.0)

        problem = ReactionDiffusionProblem(grid, initial, 0.01, reaction, start_time=1.0)
        times = [1.0, 2.0, 4.0, 6.0]
        internal = ReactionDiffusionSolver(max_step=0.01, backend="internal").solve(problem, times)
        scipy_solution = ReactionDiffusionSolver(max_step=0.05, backend="scipy").solve(problem, times)
        for t in times:
            assert np.allclose(internal.at_time(t), scipy_solution.at_time(t), rtol=2e-3, atol=1e-4)

    def test_time_varying_diffusion_supported(self):
        grid = UniformGrid(0.0, 1.0, 21)

        def diffusion(x, t):
            return np.full_like(x, 0.02 + 0.01 * t)

        problem = ReactionDiffusionProblem(
            grid, np.cos(np.pi * grid.nodes) + 1.0, diffusion, no_reaction, start_time=0.0
        )
        solution = ReactionDiffusionSolver(max_step=0.02).solve(problem, [0.0, 1.0])
        # Flattening must have happened (diffusion active), mean preserved.
        assert np.max(solution.at_time(1.0)) < np.max(solution.at_time(0.0))
