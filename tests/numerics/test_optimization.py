"""Tests for the fitting utilities in repro.numerics.optimization."""

import numpy as np
import pytest

from repro.numerics.optimization import (
    FitResult,
    grid_search,
    least_squares_fit,
    mean_relative_error,
    sum_of_squares,
)


class TestLossHelpers:
    def test_sum_of_squares(self):
        assert sum_of_squares(np.array([3.0, 4.0])) == pytest.approx(12.5)

    def test_sum_of_squares_zero(self):
        assert sum_of_squares(np.zeros(5)) == 0.0

    def test_mean_relative_error_exact(self):
        predicted = np.array([1.0, 2.0, 4.0])
        actual = np.array([1.0, 2.0, 4.0])
        assert mean_relative_error(predicted, actual) == 0.0

    def test_mean_relative_error_values(self):
        predicted = np.array([1.1, 1.8])
        actual = np.array([1.0, 2.0])
        assert mean_relative_error(predicted, actual) == pytest.approx(0.1)

    def test_mean_relative_error_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_relative_error(np.zeros(3), np.zeros(4))

    def test_mean_relative_error_handles_zero_actual(self):
        value = mean_relative_error(np.array([1.0]), np.array([0.0]))
        assert np.isfinite(value)


class TestLeastSquaresFit:
    def test_fits_linear_model(self):
        rng = np.random.default_rng(1)
        x = np.linspace(0, 10, 40)
        y = 3.0 * x - 2.0 + rng.normal(0, 0.01, x.size)

        def residual(theta):
            return theta[0] * x + theta[1] - y

        result = least_squares_fit(residual, [1.0, 0.0], names=("slope", "intercept"))
        assert result.success
        assert result.parameters[0] == pytest.approx(3.0, abs=0.01)
        assert result.parameters[1] == pytest.approx(-2.0, abs=0.05)
        assert result.as_dict()["slope"] == pytest.approx(3.0, abs=0.01)

    def test_bounds_are_respected(self):
        def residual(theta):
            return np.array([theta[0] - 10.0])

        result = least_squares_fit(residual, [0.5], bounds=([0.0], [1.0]))
        assert 0.0 <= result.parameters[0] <= 1.0
        assert result.parameters[0] == pytest.approx(1.0, abs=1e-6)

    def test_initial_guess_clipped_into_bounds(self):
        def residual(theta):
            return np.array([theta[0]])

        result = least_squares_fit(residual, [5.0], bounds=([0.0], [1.0]))
        assert result.parameters[0] <= 1.0

    def test_rejects_empty_guess(self):
        with pytest.raises(ValueError):
            least_squares_fit(lambda theta: theta, [])

    def test_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            least_squares_fit(lambda theta: theta, [1.0, 2.0], bounds=([0.0], [1.0]))

    def test_as_dict_requires_names(self):
        result = least_squares_fit(lambda theta: theta, [1.0])
        with pytest.raises(ValueError):
            result.as_dict()


class TestGridSearch:
    def test_finds_minimum_of_quadratic(self):
        def objective(theta):
            return (theta[0] - 2.0) ** 2 + (theta[1] + 1.0) ** 2

        result = grid_search(
            objective,
            {"a": np.linspace(-3, 3, 13), "b": np.linspace(-3, 3, 13)},
        )
        assert result.success
        assert result.parameters[0] == pytest.approx(2.0)
        assert result.parameters[1] == pytest.approx(-1.0)
        assert result.n_evaluations == 169

    def test_result_as_dict(self):
        result = grid_search(lambda theta: theta[0] ** 2, {"x": [-1.0, 0.0, 1.0]})
        assert result.as_dict() == {"x": 0.0}

    def test_handles_all_nan_objective(self):
        result = grid_search(lambda theta: float("nan"), {"x": [0.0, 1.0]})
        assert not result.success
        assert result.loss == np.inf

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            grid_search(lambda theta: 0.0, {})
        with pytest.raises(ValueError):
            grid_search(lambda theta: 0.0, {"x": []})


class TestFitResult:
    def test_dataclass_roundtrip(self):
        result = FitResult(
            parameters=np.array([1.0, 2.0]),
            loss=0.5,
            success=True,
            n_evaluations=10,
            message="ok",
            names=("a", "b"),
        )
        assert result.as_dict() == {"a": 1.0, "b": 2.0}
        assert result.loss == 0.5
