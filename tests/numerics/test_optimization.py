"""Tests for the fitting utilities in repro.numerics.optimization."""

import numpy as np
import pytest

from repro.numerics.optimization import (
    FitResult,
    grid_search,
    least_squares_fit,
    mean_relative_error,
    multi_start_least_squares,
    sum_of_squares,
)


class TestLossHelpers:
    def test_sum_of_squares(self):
        assert sum_of_squares(np.array([3.0, 4.0])) == pytest.approx(12.5)

    def test_sum_of_squares_zero(self):
        assert sum_of_squares(np.zeros(5)) == 0.0

    def test_mean_relative_error_exact(self):
        predicted = np.array([1.0, 2.0, 4.0])
        actual = np.array([1.0, 2.0, 4.0])
        assert mean_relative_error(predicted, actual) == 0.0

    def test_mean_relative_error_values(self):
        predicted = np.array([1.1, 1.8])
        actual = np.array([1.0, 2.0])
        assert mean_relative_error(predicted, actual) == pytest.approx(0.1)

    def test_mean_relative_error_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_relative_error(np.zeros(3), np.zeros(4))

    def test_mean_relative_error_handles_zero_actual(self):
        value = mean_relative_error(np.array([1.0]), np.array([0.0]))
        assert np.isfinite(value)


class TestLeastSquaresFit:
    def test_fits_linear_model(self):
        rng = np.random.default_rng(1)
        x = np.linspace(0, 10, 40)
        y = 3.0 * x - 2.0 + rng.normal(0, 0.01, x.size)

        def residual(theta):
            return theta[0] * x + theta[1] - y

        result = least_squares_fit(residual, [1.0, 0.0], names=("slope", "intercept"))
        assert result.success
        assert result.parameters[0] == pytest.approx(3.0, abs=0.01)
        assert result.parameters[1] == pytest.approx(-2.0, abs=0.05)
        assert result.as_dict()["slope"] == pytest.approx(3.0, abs=0.01)

    def test_bounds_are_respected(self):
        def residual(theta):
            return np.array([theta[0] - 10.0])

        result = least_squares_fit(residual, [0.5], bounds=([0.0], [1.0]))
        assert 0.0 <= result.parameters[0] <= 1.0
        assert result.parameters[0] == pytest.approx(1.0, abs=1e-6)

    def test_initial_guess_clipped_into_bounds(self):
        def residual(theta):
            return np.array([theta[0]])

        result = least_squares_fit(residual, [5.0], bounds=([0.0], [1.0]))
        assert result.parameters[0] <= 1.0

    def test_rejects_empty_guess(self):
        with pytest.raises(ValueError):
            least_squares_fit(lambda theta: theta, [])

    def test_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            least_squares_fit(lambda theta: theta, [1.0, 2.0], bounds=([0.0], [1.0]))

    def test_as_dict_requires_names(self):
        result = least_squares_fit(lambda theta: theta, [1.0])
        with pytest.raises(ValueError):
            result.as_dict()


def batch_wrap(residual_one):
    """Adapt a single-point residual to the batched-callback signature."""

    def residual_batch(points, start_indices):
        return [residual_one(point) for point in points]

    return residual_batch


class TestMultiStartLeastSquares:
    def test_converges_on_exponential_fit(self):
        x = np.linspace(0.0, 3.0, 25)
        target = 1.3 * np.exp(-0.7 * x)

        def residual(theta):
            return theta[0] * np.exp(-theta[1] * x) - target

        result = multi_start_least_squares(
            batch_wrap(residual),
            [[0.5, 0.1], [2.0, 2.0]],
            bounds=([0.0, 0.0], [5.0, 5.0]),
            names=("a", "b"),
        )
        assert result.best.parameters == pytest.approx([1.3, 0.7], abs=1e-8)
        assert result.best.as_dict()["a"] == pytest.approx(1.3, abs=1e-8)
        assert result.best.loss < 1e-16
        assert result.converged.all()
        assert result.start_losses.shape == (2,)

    def test_matches_scipy_least_squares(self):
        rng = np.random.default_rng(5)
        x = np.linspace(0.0, 10.0, 40)
        y = 3.0 * x - 2.0 + rng.normal(0.0, 0.01, x.size)

        def residual(theta):
            return theta[0] * x + theta[1] - y

        ours = multi_start_least_squares(batch_wrap(residual), [[1.0, 0.0]])
        scipy_fit = least_squares_fit(residual, [1.0, 0.0])
        assert ours.best.parameters == pytest.approx(scipy_fit.parameters, abs=1e-7)
        assert ours.best.loss == pytest.approx(scipy_fit.loss, rel=1e-9)

    def test_multi_start_escapes_bad_basin(self):
        # loss has a local minimum near theta=0 and the global one at theta=3;
        # only the start seeded in the right basin finds it.
        def residual(theta):
            t = theta[0]
            return np.array([t * (t - 2.0) * (t - 3.0), 0.1 * (t - 3.0)])

        result = multi_start_least_squares(
            batch_wrap(residual), [[0.1], [2.8]], bounds=([-1.0], [4.0])
        )
        assert result.best.parameters[0] == pytest.approx(3.0, abs=1e-6)
        assert result.best_start == 1
        # The other start stayed in its own basin but still improved.
        assert result.start_losses[0] <= np.inf

    def test_bounds_are_respected(self):
        def residual(theta):
            return np.array([theta[0] - 10.0])

        result = multi_start_least_squares(
            batch_wrap(residual), [[0.5]], bounds=([0.0], [1.0])
        )
        assert result.best.parameters[0] == pytest.approx(1.0)

    def test_never_worsens_the_seed_loss(self):
        def residual(theta):
            return np.array([np.exp(theta[0]) - 1.0, theta[1] ** 2])

        seeds = np.array([[0.3, -0.4], [1.0, 1.0]])
        result = multi_start_least_squares(batch_wrap(residual), seeds)
        for row, seed in enumerate(seeds):
            seed_loss = sum_of_squares(residual(seed))
            assert result.start_losses[row] <= seed_loss + 1e-15

    def test_start_indices_passed_through(self):
        seen = []

        def residual_batch(points, start_indices):
            seen.append(np.asarray(start_indices).copy())
            return [np.array([point[0] - start]) for point, start in zip(points, start_indices)]

        result = multi_start_least_squares(residual_batch, [[5.0], [5.0]], max_iterations=8)
        # Each start converges to its own index because the residual depends
        # on the per-start context passed via start_indices.
        assert result.start_parameters[0, 0] == pytest.approx(0.0, abs=1e-8)
        assert result.start_parameters[1, 0] == pytest.approx(1.0, abs=1e-8)
        assert all(len(indices) > 0 for indices in seen)

    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError):
            multi_start_least_squares(batch_wrap(lambda t: t), np.empty((0, 2)))

    def test_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            multi_start_least_squares(
                batch_wrap(lambda t: t), [[1.0, 2.0]], bounds=([0.0], [1.0])
            )

    def test_rejects_wrong_result_count(self):
        def bad_batch(points, start_indices):
            return [np.zeros(2)]

        with pytest.raises(ValueError):
            multi_start_least_squares(bad_batch, [[1.0], [2.0]])

    def test_all_nan_residuals_raise(self):
        def nan_batch(points, start_indices):
            return [np.full(3, np.nan) for _ in points]

        with pytest.raises(RuntimeError):
            multi_start_least_squares(nan_batch, [[1.0]])


class TestGridSearch:
    def test_finds_minimum_of_quadratic(self):
        def objective(theta):
            return (theta[0] - 2.0) ** 2 + (theta[1] + 1.0) ** 2

        result = grid_search(
            objective,
            {"a": np.linspace(-3, 3, 13), "b": np.linspace(-3, 3, 13)},
        )
        assert result.success
        assert result.parameters[0] == pytest.approx(2.0)
        assert result.parameters[1] == pytest.approx(-1.0)
        assert result.n_evaluations == 169

    def test_result_as_dict(self):
        result = grid_search(lambda theta: theta[0] ** 2, {"x": [-1.0, 0.0, 1.0]})
        assert result.as_dict() == {"x": 0.0}

    def test_handles_all_nan_objective(self):
        result = grid_search(lambda theta: float("nan"), {"x": [0.0, 1.0]})
        assert not result.success
        assert result.loss == np.inf

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            grid_search(lambda theta: 0.0, {})
        with pytest.raises(ValueError):
            grid_search(lambda theta: 0.0, {"x": []})


class TestFitResult:
    def test_dataclass_roundtrip(self):
        result = FitResult(
            parameters=np.array([1.0, 2.0]),
            loss=0.5,
            success=True,
            n_evaluations=10,
            message="ok",
            names=("a", "b"),
        )
        assert result.as_dict() == {"a": 1.0, "b": 2.0}
        assert result.loss == 0.5
