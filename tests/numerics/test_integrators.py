"""Tests for the time-stepping schemes."""

import numpy as np
import pytest

from repro.numerics.finite_difference import laplacian_matrix
from repro.numerics.integrators import (
    CrankNicolsonIntegrator,
    ExplicitEulerIntegrator,
    RungeKutta4Integrator,
    make_integrator,
)

ALL_INTEGRATORS = [ExplicitEulerIntegrator(), RungeKutta4Integrator(), CrankNicolsonIntegrator()]


def zero_reaction(u, t):
    return np.zeros_like(u)


def _integrate(integrator, state, diffusion_matrix, reaction, dt, t_end):
    time = 0.0
    integrator.prepare(diffusion_matrix, dt)
    while time < t_end - 1e-12:
        step = min(dt, t_end - time)
        step = integrator.suggested_dt(diffusion_matrix, step)
        state = integrator.step(state, time, step, diffusion_matrix, reaction)
        time += step
    return state


class TestScalarDecay:
    """du/dt = -u has the exact solution u0 * exp(-t)."""

    diffusion = np.array([[-1.0]])

    @pytest.mark.parametrize("integrator", ALL_INTEGRATORS, ids=lambda i: i.name)
    def test_converges_to_exponential(self, integrator):
        state = np.array([2.0])
        result = _integrate(integrator, state, self.diffusion, zero_reaction, 0.01, 1.0)
        assert result[0] == pytest.approx(2.0 * np.exp(-1.0), rel=1e-2)

    def test_rk4_is_much_more_accurate_than_euler(self):
        state = np.array([1.0])
        euler = _integrate(ExplicitEulerIntegrator(), state, self.diffusion, zero_reaction, 0.1, 1.0)
        rk4 = _integrate(RungeKutta4Integrator(), state, self.diffusion, zero_reaction, 0.1, 1.0)
        exact = np.exp(-1.0)
        assert abs(rk4[0] - exact) < abs(euler[0] - exact) / 50


class TestReactionOnly:
    """Pure logistic reaction with no diffusion matrix coupling."""

    diffusion = np.zeros((3, 3))

    @staticmethod
    def logistic_reaction(u, t):
        return 0.8 * u * (1.0 - u / 10.0)

    @pytest.mark.parametrize("integrator", ALL_INTEGRATORS, ids=lambda i: i.name)
    def test_matches_analytic_logistic(self, integrator):
        state = np.array([1.0, 2.0, 5.0])
        result = _integrate(integrator, state, self.diffusion, self.logistic_reaction, 0.02, 3.0)
        expected = 10.0 / (1.0 + (10.0 / state - 1.0) * np.exp(-0.8 * 3.0))
        assert np.allclose(result, expected, rtol=5e-3)


class TestDiffusionMode:
    """Heat equation on [0, 1] with Neumann BCs: the cos(pi x) mode decays
    at rate d * pi^2 (up to spatial discretisation error)."""

    def _setup(self, num_points=41):
        spacing = 1.0 / (num_points - 1)
        nodes = np.linspace(0, 1, num_points)
        d = 0.05
        matrix = d * laplacian_matrix(num_points, spacing)
        initial = np.cos(np.pi * nodes) + 1.0
        return matrix, nodes, initial, d

    @pytest.mark.parametrize(
        "integrator",
        [RungeKutta4Integrator(), CrankNicolsonIntegrator()],
        ids=lambda i: i.name,
    )
    def test_mode_decay_rate(self, integrator):
        matrix, nodes, initial, d = self._setup()
        t_end = 2.0
        result = _integrate(integrator, initial, matrix, zero_reaction, 0.01, t_end)
        expected = np.cos(np.pi * nodes) * np.exp(-d * np.pi**2 * t_end) + 1.0
        assert np.allclose(result, expected, atol=5e-3)

    def test_crank_nicolson_stable_at_large_steps(self):
        """CN stays bounded at step sizes where explicit Euler explodes."""
        matrix, nodes, initial, _ = self._setup(num_points=101)
        dt = 0.5  # far above the explicit stability limit for h = 0.01
        cn = CrankNicolsonIntegrator()
        state = initial.copy()
        cn.prepare(matrix, dt)
        for step_index in range(10):
            state = cn.step(state, step_index * dt, dt, matrix, zero_reaction)
        assert np.all(np.isfinite(state))
        assert np.max(np.abs(state)) <= np.max(np.abs(initial)) + 1e-6

    def test_explicit_euler_suggested_dt_respects_stability(self):
        matrix, _, _, _ = self._setup(num_points=101)
        euler = ExplicitEulerIntegrator()
        suggested = euler.suggested_dt(matrix, 1.0)
        max_diag = np.max(np.abs(np.diag(matrix)))
        assert suggested <= 1.0 / max_diag


class TestCrankNicolsonDetails:
    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            CrankNicolsonIntegrator(max_picard_iterations=0)
        with pytest.raises(ValueError):
            CrankNicolsonIntegrator(tolerance=0.0)

    def test_factorisation_reused_for_same_matrix_and_dt(self):
        cn = CrankNicolsonIntegrator()
        matrix = laplacian_matrix(11, 0.1)
        cn.prepare(matrix, 0.05)
        first = cn._lhs_factor
        cn.step(np.zeros(11), 0.0, 0.05, matrix, zero_reaction)
        assert cn._lhs_factor is first


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("explicit_euler", ExplicitEulerIntegrator),
            ("rk4", RungeKutta4Integrator),
            ("crank_nicolson", CrankNicolsonIntegrator),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_integrator(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_integrator("leapfrog")
