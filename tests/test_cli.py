"""Tests for the command-line interface."""

import json

import pytest

from repro.cascade.dataset import CascadeDataset
from repro.cli import build_parser, main

# Small, fast corpus arguments reused by every CLI invocation in these tests.
CORPUS_ARGS = ["--users", "900", "--background-stories", "25", "--seed", "1234"]


def write_manifest(tmp_path, payload, name="manifest.json"):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["predict"])
        assert args.story == "s1"
        assert args.metric == "hops"
        assert args.hours == 6
        assert args.seed == 2009
        assert args.backend == "internal"

    def test_predict_batch_defaults(self):
        args = build_parser().parse_args(["predict-batch"])
        assert args.stories == ["s1", "s2", "s3", "s4"]
        assert args.metric == "hops"
        assert args.hours == 6
        assert args.backend == "internal"
        assert args.json is None
        assert args.sequential_calibration is False

    def test_unknown_backend_accepted_by_parser(self):
        # Backend names are validated against the live registry when the
        # command runs (backends can be registered at runtime), not by
        # argparse choices.
        args = build_parser().parse_args(["predict", "--backend", "cuda"])
        assert args.backend == "cuda"

    def test_unknown_operator_accepted_by_parser(self):
        # Operator modes are validated by the engine at run time (mirroring
        # --backend), so the parser accepts any string.
        args = build_parser().parse_args(["predict", "--operator", "cholesky"])
        assert args.operator == "cholesky"

    def test_operator_defaults_to_auto(self):
        for command in ("predict", "predict-batch"):
            assert build_parser().parse_args([command]).operator == "auto"
        serve = build_parser().parse_args(["serve-batch", "--manifest", "m.json"])
        assert serve.operator == "auto"

    def test_serve_batch_defaults(self):
        args = build_parser().parse_args(["serve-batch", "--manifest", "m.json"])
        assert args.manifest == "m.json"
        assert args.workers == 4
        assert args.queue_depth == 128
        assert args.shard_size == 32
        assert args.hours is None
        assert args.output is None
        # Corpus flags default to "not given" so only explicit values
        # override the manifest's corpus block.
        assert args.users is None
        assert args.background_stories is None
        assert args.seed is None
        assert args.horizon is None

    def test_serve_batch_explicit_corpus_flags_parse(self):
        args = build_parser().parse_args(
            ["serve-batch", "--manifest", "m.json", "--seed", "7", "--users", "500"]
        )
        assert args.seed == 7
        assert args.users == 500

    def test_predict_batch_story_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict-batch", "--stories", "s1", "s9"])

    def test_hours_window_validated(self):
        # Calibration needs hour 1 (phi) plus at least one target hour, so a
        # window shorter than 2 must fail at the parser, not as a traceback.
        for command in ("predict", "predict-batch"):
            for hours in ("1", "0", "-3"):
                with pytest.raises(SystemExit):
                    build_parser().parse_args([command, "--hours", hours])

    def test_story_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "--story", "s9"])

    def test_metric_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "--metric", "euclidean"])


class TestBuildCorpus:
    def test_writes_loadable_json(self, tmp_path, capsys):
        output = tmp_path / "corpus.json"
        exit_code = main(["build-corpus", *CORPUS_ARGS, "--output", str(output)])
        assert exit_code == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(output.read_text())
        assert payload["num_users"] == 900
        dataset = CascadeDataset.from_json_dict(payload)
        assert dataset.num_stories == 4 + 25


class TestCharacterize:
    def test_prints_density_surface_and_saturation(self, capsys):
        exit_code = main(["characterize", *CORPUS_ARGS, "--story", "s1"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Distribution of users" in out
        assert "Density of influenced users, s1, hops" in out
        assert "saturation time" in out

    def test_interest_metric(self, capsys):
        exit_code = main(["characterize", *CORPUS_ARGS, "--story", "s1", "--metric", "interests"])
        assert exit_code == 0
        assert "interests" in capsys.readouterr().out


class TestPredict:
    def test_prints_accuracy_table(self, capsys):
        exit_code = main(["predict", *CORPUS_ARGS, "--story", "s1", "--hours", "4"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Prediction accuracy" in out
        assert "Overall average accuracy" in out
        assert "calibrated parameters" in out

    def test_fails_cleanly_when_first_hour_is_empty(self, capsys):
        # Story s4 on the small corpus has no votes in its first hour, so the
        # CLI must exit with an error message rather than a traceback.
        exit_code = main(["predict", *CORPUS_ARGS, "--story", "s4", "--hours", "4"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "first observed hour" in captured.err

    def test_unknown_backend_exits_with_registered_list(self, capsys):
        # The message comes from the engine's registry error path, so it must
        # name the offending backend and list every registered one.
        exit_code = main(["predict", *CORPUS_ARGS, "--backend", "cuda"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert captured.err.startswith("error:")
        assert "cuda" in captured.err
        for registered in ("'internal'", "'scipy'", "'thomas'"):
            assert registered in captured.err

    def test_runtime_registered_backend_accepted(self, capsys):
        # A backend registered after import must be usable from the CLI --
        # the reason --backend is not an argparse choices list.
        from repro.numerics.backends import (
            InternalBackend,
            register_backend,
            unregister_backend,
        )

        register_backend("cli-test-backend", InternalBackend)
        try:
            exit_code = main(
                ["predict", *CORPUS_ARGS, "--hours", "3", "--backend", "cli-test-backend"]
            )
        finally:
            unregister_backend("cli-test-backend")
        assert exit_code == 0
        assert "Prediction accuracy" in capsys.readouterr().out


class TestPredictBatch:
    def test_prints_summary_and_writes_json(self, tmp_path, capsys):
        output = tmp_path / "batch.json"
        exit_code = main(
            [
                "predict-batch",
                *CORPUS_ARGS,
                "--stories",
                "s1",
                "--hours",
                "4",
                "--json",
                str(output),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Prediction accuracy" in out
        assert "overall accuracy" in out
        payload = json.loads(output.read_text())
        assert payload["stories"]["s1"]["overall_accuracy"] > 0.0
        assert payload["calibration"] == "batched"
        assert payload["backend"] == "internal"
        assert payload["operator"] == "auto"

    def test_json_parameters_are_structured_numbers(self, tmp_path, capsys):
        # The payload must round-trip through json.loads with numeric
        # parameter fields -- never a Python repr string.
        output = tmp_path / "batch.json"
        exit_code = main(
            ["predict-batch", *CORPUS_ARGS, "--stories", "s1", "--hours", "4",
             "--json", str(output)]
        )
        assert exit_code == 0
        parameters = json.loads(output.read_text())["stories"]["s1"]["parameters"]
        assert isinstance(parameters, dict)
        assert isinstance(parameters["d"], float)
        assert isinstance(parameters["K"], float)
        assert parameters["d"] > 0 and parameters["K"] > 0
        rate = parameters["r"]
        assert rate["type"] == "exponential_decay"
        for field in ("amplitude", "decay", "floor", "reference_time"):
            assert isinstance(rate[field], float)
        # The repr stays in the human-readable summary.
        assert "DLParameters(" in capsys.readouterr().out

    def test_operator_thomas_matches_banded(self, tmp_path, capsys):
        payloads = {}
        for operator in ("banded", "thomas"):
            output = tmp_path / f"{operator}.json"
            exit_code = main(
                ["predict-batch", *CORPUS_ARGS, "--stories", "s1", "--hours", "3",
                 "--operator", operator, "--json", str(output)]
            )
            assert exit_code == 0
            payloads[operator] = json.loads(output.read_text())
        capsys.readouterr()
        banded, thomas = payloads["banded"], payloads["thomas"]
        assert banded["operator"] == "banded" and thomas["operator"] == "thomas"
        assert banded["overall_accuracy"] == pytest.approx(
            thomas["overall_accuracy"], abs=1e-9
        )
        banded_params = banded["stories"]["s1"]["parameters"]
        thomas_params = thomas["stories"]["s1"]["parameters"]
        assert banded_params["r"].pop("type") == thomas_params["r"].pop("type")
        for field in ("d", "K"):
            assert banded_params[field] == pytest.approx(thomas_params[field], abs=1e-9)
        assert banded_params["r"] == pytest.approx(thomas_params["r"], abs=1e-9)

    def test_unknown_operator_exits_with_mode_list(self, capsys):
        exit_code = main(["predict-batch", *CORPUS_ARGS, "--operator", "cholesky"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert captured.err.startswith("error:")
        assert "cholesky" in captured.err
        for mode in ("'banded'", "'thomas'", "'dense'"):
            assert mode in captured.err

    def test_operator_on_scipy_backend_exits_cleanly(self, capsys):
        exit_code = main(
            ["predict-batch", *CORPUS_ARGS, "--backend", "scipy", "--operator", "dense"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "does not support operator" in captured.err

    def test_skips_empty_stories_and_reports_them(self, capsys):
        # s4 has no votes in its first hour on the small corpus; the batch
        # command warns and continues with the stories that have data.
        exit_code = main(
            ["predict-batch", *CORPUS_ARGS, "--stories", "s1", "s4", "--hours", "4"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "skipping s4" in captured.err
        assert "s1" in captured.out

    def test_all_skipped_suggests_other_metric(self, capsys):
        # Both requested stories are empty in hour 1 on this corpus: the
        # error must be the all-skipped message, not the empty-list one.
        exit_code = main(
            ["predict-batch", *CORPUS_ARGS, "--stories", "s4", "--hours", "4"]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "every requested story is empty" in captured.err


class TestServeBatch:
    CORPUS_BLOCK = {"users": 900, "background_stories": 25, "seed": 1234}

    def test_streams_json_lines_matching_predict_batch(self, tmp_path, capsys):
        # serve-batch must produce per-story results identical to the
        # synchronous predict-batch path on the same corpus.
        reference_path = tmp_path / "reference.json"
        assert (
            main(["predict-batch", *CORPUS_ARGS, "--stories", "s1", "--hours", "4",
                  "--json", str(reference_path)])
            == 0
        )
        capsys.readouterr()
        manifest = write_manifest(
            tmp_path, {"hours": 4, "corpus": self.CORPUS_BLOCK, "stories": ["s1"]}
        )
        exit_code = main(["serve-batch", *CORPUS_ARGS, "--manifest", manifest])
        captured = capsys.readouterr()
        assert exit_code == 0
        lines = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert len(lines) == 1
        (record,) = lines
        assert record["story"] == "s1"
        assert record["status"] == "succeeded"
        reference = json.loads(reference_path.read_text())["stories"]["s1"]
        assert record["overall_accuracy"] == reference["overall_accuracy"]
        assert record["parameters"] == reference["parameters"]
        assert record["accuracy_by_distance"] == reference["accuracy_by_distance"]
        assert "scored 1/1" in captured.err

    def test_inline_manifest_needs_no_corpus(self, tmp_path, capsys):
        inline = {
            "name": "cascade-1",
            "distances": [1, 2, 3, 4, 5],
            "times": [1, 2, 3, 4],
            "values": [
                [5.0, 2.0, 2.5, 1.5, 1.0],
                [7.0, 3.0, 3.5, 2.0, 1.4],
                [9.0, 4.2, 4.6, 2.6, 1.9],
                [11.0, 5.5, 5.8, 3.3, 2.5],
            ],
        }
        manifest = write_manifest(tmp_path, {"hours": 4, "stories": [inline]})
        output = tmp_path / "results.ndjson"
        exit_code = main(
            ["serve-batch", "--manifest", manifest, "--output", str(output)]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        record = json.loads(captured.out.strip())
        assert record["story"] == "cascade-1"
        assert record["status"] == "succeeded"
        assert isinstance(record["parameters"]["d"], float)
        # --output mirrors the streamed lines.
        assert json.loads(output.read_text().strip()) == record

    def test_process_executor_matches_thread_run(self, tmp_path, capsys):
        inline = {
            "name": "cascade-1",
            "distances": [1, 2, 3, 4, 5],
            "times": [1, 2, 3, 4],
            "values": [
                [5.0, 2.0, 2.5, 1.5, 1.0],
                [7.0, 3.0, 3.5, 2.0, 1.4],
                [9.0, 4.2, 4.6, 2.6, 1.9],
                [11.0, 5.5, 5.8, 3.3, 2.5],
            ],
        }
        manifest = write_manifest(tmp_path, {"hours": 4, "stories": [inline]})
        assert main(["serve-batch", "--manifest", manifest]) == 0
        reference = json.loads(capsys.readouterr().out.strip())
        exit_code = main(
            ["serve-batch", "--manifest", manifest, "--executor", "process",
             "--workers", "2"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "2 process workers" in captured.err
        # JSON floats round-trip exactly: the whole record must compare equal.
        assert json.loads(captured.out.strip()) == reference

    def test_unknown_executor_exits_with_registered_list(self, tmp_path, capsys):
        manifest = write_manifest(tmp_path, {"hours": 4, "stories": []})
        exit_code = main(
            ["serve-batch", "--manifest", manifest, "--executor", "frobnicate"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert captured.err.startswith("error:")
        assert "frobnicate" in captured.err
        for registered in ("'thread'", "'process'"):
            assert registered in captured.err

    def test_empty_manifest_exits_with_distinct_message(self, tmp_path, capsys):
        manifest = write_manifest(tmp_path, {"stories": []})
        exit_code = main(["serve-batch", "--manifest", manifest])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "contains no stories" in captured.err
        # The all-skipped suggestion would mislead here.
        assert "try a different metric or seed" not in captured.err

    def test_all_skipped_manifest_suggests_other_metric(self, tmp_path, capsys):
        # s4 is empty in hour 1 on the small corpus (see TestPredictBatch).
        manifest = write_manifest(
            tmp_path, {"hours": 4, "corpus": self.CORPUS_BLOCK, "stories": ["s4"]}
        )
        exit_code = main(["serve-batch", *CORPUS_ARGS, "--manifest", manifest])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "skipping s4" in captured.err
        assert "every story in the manifest is empty" in captured.err
        assert "try a different metric or seed" in captured.err
        # Skipped stories get a machine-readable record too.
        (record,) = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert record == {
            "story": "s4",
            "status": "skipped",
            "model": "dl",
            "reason": "no influenced users at any distance in the first observed hour",
        }

    def test_invalid_pool_bounds_exit_cleanly(self, tmp_path, capsys):
        manifest = write_manifest(
            tmp_path, {"hours": 4, "corpus": self.CORPUS_BLOCK, "stories": ["s1"]}
        )
        for flag in ("--workers", "--queue-depth", "--shard-size"):
            exit_code = main(["serve-batch", "--manifest", manifest, flag, "0"])
            captured = capsys.readouterr()
            assert exit_code == 2
            assert f"{flag} must be >= 1" in captured.err

    def test_inline_story_missing_training_anchor_exits_cleanly(self, tmp_path, capsys):
        late = {
            "name": "late",
            "distances": [1, 2, 3],
            "times": [2, 3, 4],
            "values": [[5.0, 2.0, 1.0]] * 3,
        }
        manifest = write_manifest(tmp_path, {"hours": 4, "stories": [late]})
        exit_code = main(["serve-batch", "--manifest", manifest])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "training hour" in captured.err

    def test_missing_manifest_exits_2(self, tmp_path, capsys):
        exit_code = main(["serve-batch", "--manifest", str(tmp_path / "nope.json")])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "does not exist" in captured.err

    def test_invalid_manifest_exits_2(self, tmp_path, capsys):
        manifest = write_manifest(tmp_path, {"stories": ["s1"]})  # no corpus block
        exit_code = main(["serve-batch", "--manifest", manifest])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert captured.err.startswith("error:")

    def test_partial_failure_exits_3(self, tmp_path, capsys, monkeypatch):
        # One story scores, one fails its fit: batch pipelines need a
        # distinct exit code (3) for partial failure -- 0 would hide the
        # failure, 1 means nothing scored, 2 means bad configuration.
        from repro.core.prediction import BatchPredictor

        original = BatchPredictor.fit_story

        def failing(self, name, observed, training_times=None):
            if name == "doomed":
                raise ValueError("synthetic per-story fit failure")
            return original(self, name, observed, training_times)

        monkeypatch.setattr(BatchPredictor, "fit_story", failing)
        inline = {
            "distances": [1, 2, 3, 4, 5],
            "times": [1, 2, 3, 4],
            "values": [
                [5.0, 2.0, 2.5, 1.5, 1.0],
                [7.0, 3.0, 3.5, 2.0, 1.4],
                [9.0, 4.2, 4.6, 2.6, 1.9],
                [11.0, 5.5, 5.8, 3.3, 2.5],
            ],
        }
        manifest = write_manifest(
            tmp_path,
            {
                "hours": 4,
                "stories": [
                    {"name": "good", **inline},
                    {"name": "doomed", **inline},
                ],
            },
        )
        exit_code = main(["serve-batch", "--manifest", manifest])
        captured = capsys.readouterr()
        assert exit_code == 3
        records = {
            record["story"]: record
            for record in map(json.loads, captured.out.strip().splitlines())
        }
        assert records["good"]["status"] == "succeeded"
        assert records["doomed"]["status"] == "failed"
        assert "synthetic per-story fit failure" in records["doomed"]["error"]
        assert "exiting 3 (partial failure)" in captured.err

    def test_total_failure_exits_1_not_3(self, tmp_path, capsys, monkeypatch):
        # Exit 3 promises usable partial results; when *every* story failed
        # there are none, so the exit code must stay 1.
        from repro.core.prediction import BatchPredictor

        def failing(self, name, observed, training_times=None):
            raise ValueError("synthetic per-story fit failure")

        monkeypatch.setattr(BatchPredictor, "fit_story", failing)
        manifest = write_manifest(
            tmp_path,
            {
                "hours": 4,
                "stories": [
                    {
                        "name": "doomed",
                        "distances": [1, 2, 3, 4, 5],
                        "times": [1, 2, 3, 4],
                        "values": [
                            [5.0, 2.0, 2.5, 1.5, 1.0],
                            [7.0, 3.0, 3.5, 2.0, 1.4],
                            [9.0, 4.2, 4.6, 2.6, 1.9],
                            [11.0, 5.5, 5.8, 3.3, 2.5],
                        ],
                    }
                ],
            },
        )
        exit_code = main(["serve-batch", "--manifest", manifest])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "every scored story failed" in captured.err


class TestDaemonCommands:
    def test_daemon_parser_defaults(self):
        args = build_parser().parse_args(["daemon"])
        assert args.socket is None  # stdio by default
        assert args.workers == 4
        assert args.queue_depth == 128
        assert args.shard_size == 32
        assert args.autotune is False
        assert args.timeout is None
        assert args.backend == "internal"
        assert args.operator == "auto"

    def test_submit_requires_socket_and_manifest(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "--manifest", "m.json"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "--socket", "d.sock"])
        args = build_parser().parse_args(
            ["submit", "--socket", "d.sock", "--manifest", "m.json", "--id", "j1"]
        )
        assert args.id == "j1" and args.timeout is None and args.output is None

    def test_daemon_stats_requires_socket(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["daemon-stats"])

    def test_daemon_invalid_pool_bounds_exit_cleanly(self, capsys):
        for flag in ("--workers", "--queue-depth", "--shard-size"):
            exit_code = main(["daemon", "--socket", "d.sock", flag, "0"])
            captured = capsys.readouterr()
            assert exit_code == 2
            assert f"{flag} must be >= 1" in captured.err
        exit_code = main(["daemon", "--timeout", "-5"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "--timeout must be > 0" in captured.err

    def test_daemon_unknown_backend_exits_2(self, capsys):
        exit_code = main(["daemon", "--backend", "cuda"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "cuda" in captured.err

    def test_submit_missing_manifest_exits_2(self, tmp_path, capsys):
        exit_code = main(
            ["submit", "--socket", str(tmp_path / "d.sock"), "--manifest",
             str(tmp_path / "nope.json")]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "does not exist" in captured.err

    def test_submit_unreachable_daemon_exits_2(self, tmp_path, capsys):
        manifest = write_manifest(tmp_path, {"stories": []})
        exit_code = main(
            ["submit", "--socket", str(tmp_path / "gone.sock"), "--manifest", manifest]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "cannot connect to the daemon" in captured.err
        assert "repro daemon --socket" in captured.err

    def test_daemon_stats_unreachable_daemon_exits_2(self, tmp_path, capsys):
        exit_code = main(["daemon-stats", "--socket", str(tmp_path / "gone.sock")])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "cannot connect to the daemon" in captured.err
