"""Tests for the command-line interface."""

import json

import pytest

from repro.cascade.dataset import CascadeDataset
from repro.cli import build_parser, main

# Small, fast corpus arguments reused by every CLI invocation in these tests.
CORPUS_ARGS = ["--users", "900", "--background-stories", "25", "--seed", "1234"]


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["predict"])
        assert args.story == "s1"
        assert args.metric == "hops"
        assert args.hours == 6
        assert args.seed == 2009
        assert args.backend == "internal"

    def test_predict_batch_defaults(self):
        args = build_parser().parse_args(["predict-batch"])
        assert args.stories == ["s1", "s2", "s3", "s4"]
        assert args.metric == "hops"
        assert args.hours == 6
        assert args.backend == "internal"
        assert args.json is None
        assert args.sequential_calibration is False

    def test_unknown_backend_accepted_by_parser(self):
        # Backend names are validated against the live registry when the
        # command runs (backends can be registered at runtime), not by
        # argparse choices.
        args = build_parser().parse_args(["predict", "--backend", "cuda"])
        assert args.backend == "cuda"

    def test_predict_batch_story_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict-batch", "--stories", "s1", "s9"])

    def test_hours_window_validated(self):
        # Calibration needs hour 1 (phi) plus at least one target hour, so a
        # window shorter than 2 must fail at the parser, not as a traceback.
        for command in ("predict", "predict-batch"):
            for hours in ("1", "0", "-3"):
                with pytest.raises(SystemExit):
                    build_parser().parse_args([command, "--hours", hours])

    def test_story_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "--story", "s9"])

    def test_metric_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "--metric", "euclidean"])


class TestBuildCorpus:
    def test_writes_loadable_json(self, tmp_path, capsys):
        output = tmp_path / "corpus.json"
        exit_code = main(["build-corpus", *CORPUS_ARGS, "--output", str(output)])
        assert exit_code == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(output.read_text())
        assert payload["num_users"] == 900
        dataset = CascadeDataset.from_json_dict(payload)
        assert dataset.num_stories == 4 + 25


class TestCharacterize:
    def test_prints_density_surface_and_saturation(self, capsys):
        exit_code = main(["characterize", *CORPUS_ARGS, "--story", "s1"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Distribution of users" in out
        assert "Density of influenced users, s1, hops" in out
        assert "saturation time" in out

    def test_interest_metric(self, capsys):
        exit_code = main(["characterize", *CORPUS_ARGS, "--story", "s1", "--metric", "interests"])
        assert exit_code == 0
        assert "interests" in capsys.readouterr().out


class TestPredict:
    def test_prints_accuracy_table(self, capsys):
        exit_code = main(["predict", *CORPUS_ARGS, "--story", "s1", "--hours", "4"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Prediction accuracy" in out
        assert "Overall average accuracy" in out
        assert "calibrated parameters" in out

    def test_fails_cleanly_when_first_hour_is_empty(self, capsys):
        # Story s4 on the small corpus has no votes in its first hour, so the
        # CLI must exit with an error message rather than a traceback.
        exit_code = main(["predict", *CORPUS_ARGS, "--story", "s4", "--hours", "4"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "first observed hour" in captured.err

    def test_unknown_backend_exits_with_registered_list(self, capsys):
        # The message comes from the engine's registry error path, so it must
        # name the offending backend and list every registered one.
        exit_code = main(["predict", *CORPUS_ARGS, "--backend", "cuda"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert captured.err.startswith("error:")
        assert "cuda" in captured.err
        for registered in ("'internal'", "'scipy'", "'thomas'"):
            assert registered in captured.err

    def test_runtime_registered_backend_accepted(self, capsys):
        # A backend registered after import must be usable from the CLI --
        # the reason --backend is not an argparse choices list.
        from repro.numerics.backends import (
            InternalBackend,
            register_backend,
            unregister_backend,
        )

        register_backend("cli-test-backend", InternalBackend)
        try:
            exit_code = main(
                ["predict", *CORPUS_ARGS, "--hours", "3", "--backend", "cli-test-backend"]
            )
        finally:
            unregister_backend("cli-test-backend")
        assert exit_code == 0
        assert "Prediction accuracy" in capsys.readouterr().out


class TestPredictBatch:
    def test_prints_summary_and_writes_json(self, tmp_path, capsys):
        output = tmp_path / "batch.json"
        exit_code = main(
            [
                "predict-batch",
                *CORPUS_ARGS,
                "--stories",
                "s1",
                "--hours",
                "4",
                "--json",
                str(output),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Prediction accuracy" in out
        assert "overall accuracy" in out
        payload = json.loads(output.read_text())
        assert payload["stories"]["s1"]["overall_accuracy"] > 0.0
        assert payload["calibration"] == "batched"
        assert payload["backend"] == "internal"

    def test_skips_empty_stories_and_reports_them(self, capsys):
        # s4 has no votes in its first hour on the small corpus; the batch
        # command warns and continues with the stories that have data.
        exit_code = main(
            ["predict-batch", *CORPUS_ARGS, "--stories", "s1", "s4", "--hours", "4"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "skipping s4" in captured.err
        assert "s1" in captured.out
