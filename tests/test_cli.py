"""Tests for the command-line interface."""

import json

import pytest

from repro.cascade.dataset import CascadeDataset
from repro.cli import build_parser, main

# Small, fast corpus arguments reused by every CLI invocation in these tests.
CORPUS_ARGS = ["--users", "900", "--background-stories", "25", "--seed", "1234"]


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["predict"])
        assert args.story == "s1"
        assert args.metric == "hops"
        assert args.hours == 6
        assert args.seed == 2009

    def test_story_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "--story", "s9"])

    def test_metric_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "--metric", "euclidean"])


class TestBuildCorpus:
    def test_writes_loadable_json(self, tmp_path, capsys):
        output = tmp_path / "corpus.json"
        exit_code = main(["build-corpus", *CORPUS_ARGS, "--output", str(output)])
        assert exit_code == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(output.read_text())
        assert payload["num_users"] == 900
        dataset = CascadeDataset.from_json_dict(payload)
        assert dataset.num_stories == 4 + 25


class TestCharacterize:
    def test_prints_density_surface_and_saturation(self, capsys):
        exit_code = main(["characterize", *CORPUS_ARGS, "--story", "s1"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Distribution of users" in out
        assert "Density of influenced users, s1, hops" in out
        assert "saturation time" in out

    def test_interest_metric(self, capsys):
        exit_code = main(["characterize", *CORPUS_ARGS, "--story", "s1", "--metric", "interests"])
        assert exit_code == 0
        assert "interests" in capsys.readouterr().out


class TestPredict:
    def test_prints_accuracy_table(self, capsys):
        exit_code = main(["predict", *CORPUS_ARGS, "--story", "s1", "--hours", "4"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Prediction accuracy" in out
        assert "Overall average accuracy" in out
        assert "calibrated parameters" in out

    def test_fails_cleanly_when_first_hour_is_empty(self, capsys):
        # Story s4 on the small corpus has no votes in its first hour, so the
        # CLI must exit with an error message rather than a traceback.
        exit_code = main(["predict", *CORPUS_ARGS, "--story", "s4", "--hours", "4"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "first observed hour" in captured.err
