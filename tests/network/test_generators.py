"""Tests for the synthetic follower-graph generators."""

import numpy as np
import pytest

from repro.network.distance import distance_histogram, friendship_hop_distances
from repro.network.generators import (
    DiggLikeGraphConfig,
    generate_digg_like_graph,
    generate_random_follower_graph,
    generate_small_world_graph,
)
from repro.network.metrics import average_clustering_coefficient, reciprocity


class TestConfigValidation:
    def test_defaults_are_valid(self):
        DiggLikeGraphConfig()

    def test_rejects_tiny_graph(self):
        with pytest.raises(ValueError):
            DiggLikeGraphConfig(num_users=1)

    def test_rejects_core_larger_than_graph(self):
        with pytest.raises(ValueError):
            DiggLikeGraphConfig(num_users=10, initial_core=20)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            DiggLikeGraphConfig(reciprocity_probability=1.5)
        with pytest.raises(ValueError):
            DiggLikeGraphConfig(triadic_closure_probability=-0.1)
        with pytest.raises(ValueError):
            DiggLikeGraphConfig(preferential_fraction=2.0)

    def test_rejects_zero_follows(self):
        with pytest.raises(ValueError):
            DiggLikeGraphConfig(follows_per_user=0)

    def test_rejects_zero_recent_window(self):
        with pytest.raises(ValueError):
            DiggLikeGraphConfig(recent_window=0)


class TestDiggLikeGraph:
    CONFIG = DiggLikeGraphConfig(
        num_users=500,
        initial_core=6,
        follows_per_user=2,
        reciprocity_probability=0.3,
        triadic_closure_probability=0.15,
        preferential_fraction=0.45,
        recent_window=20,
        seed=3,
    )

    def test_expected_size(self):
        graph = generate_digg_like_graph(self.CONFIG)
        assert graph.num_users == 500
        assert graph.num_edges > 500

    def test_deterministic_given_seed(self):
        first = generate_digg_like_graph(self.CONFIG)
        second = generate_digg_like_graph(self.CONFIG)
        assert sorted(first.edges()) == sorted(second.edges())

    def test_different_seed_differs(self):
        other = DiggLikeGraphConfig(
            num_users=500,
            initial_core=6,
            follows_per_user=2,
            reciprocity_probability=0.3,
            triadic_closure_probability=0.15,
            preferential_fraction=0.45,
            recent_window=20,
            seed=4,
        )
        first = generate_digg_like_graph(self.CONFIG)
        second = generate_digg_like_graph(other)
        assert sorted(first.edges()) != sorted(second.edges())

    def test_heavy_tailed_audience(self):
        """A few hub users should have out-degree far above the average."""
        graph = generate_digg_like_graph(self.CONFIG)
        degrees = np.array([graph.out_degree(u) for u in graph.users()])
        assert degrees.max() > 8 * degrees.mean()

    def test_reciprocity_is_substantial(self):
        graph = generate_digg_like_graph(self.CONFIG)
        assert reciprocity(graph) > 0.1

    def test_clustering_present(self):
        graph = generate_digg_like_graph(self.CONFIG)
        assert average_clustering_coefficient(graph, sample_size=150) > 0.01

    def test_hub_reaches_most_users_within_few_hops(self):
        """Figure 2 shape: the bulk of users sit within 2-5 hops of a hub."""
        graph = generate_digg_like_graph(self.CONFIG)
        hub = max(graph.users(), key=graph.out_degree)
        distances = friendship_hop_distances(graph, hub)
        assert len(distances) > 0.9 * graph.num_users
        histogram = distance_histogram(distances, max_distance=10)
        total = sum(histogram.values())
        near = sum(histogram.get(d, 0) for d in range(2, 6))
        assert near / total > 0.7

    def test_core_is_densely_connected(self):
        graph = generate_digg_like_graph(self.CONFIG)
        for a in range(self.CONFIG.initial_core):
            for b in range(self.CONFIG.initial_core):
                if a != b:
                    assert graph.has_edge(a, b)


class TestRandomFollowerGraph:
    def test_edge_count_matches_probability(self):
        graph = generate_random_follower_graph(200, 0.05, seed=1)
        expected = 200 * 199 * 0.05
        assert abs(graph.num_edges - expected) < 0.25 * expected

    def test_no_self_loops(self):
        graph = generate_random_follower_graph(50, 0.2, seed=2)
        assert all(source != target for source, target in graph.edges())

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_random_follower_graph(1, 0.5)
        with pytest.raises(ValueError):
            generate_random_follower_graph(10, 1.5)


class TestSmallWorldGraph:
    def test_every_user_connected(self):
        graph = generate_small_world_graph(60, neighbours=4, rewiring_probability=0.1, seed=5)
        for user in graph.users():
            assert graph.out_degree(user) + graph.in_degree(user) > 0

    def test_zero_rewiring_is_ring_lattice(self):
        graph = generate_small_world_graph(20, neighbours=2, rewiring_probability=0.0, seed=0)
        for user in range(20):
            assert graph.has_edge(user, (user + 1) % 20)
            assert graph.has_edge((user + 1) % 20, user)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_small_world_graph(3, neighbours=2)
        with pytest.raises(ValueError):
            generate_small_world_graph(20, neighbours=3)
        with pytest.raises(ValueError):
            generate_small_world_graph(20, neighbours=22)
        with pytest.raises(ValueError):
            generate_small_world_graph(20, neighbours=4, rewiring_probability=1.5)
