"""Tests for friendship-hop distances (BFS) and distance histograms."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.network.distance import (
    breadth_first_distances,
    distance_histogram,
    friendship_hop_distances,
    group_users_by_distance,
)
from repro.network.graph import SocialGraph


class TestBreadthFirstDistances:
    def test_line_graph_distances(self, line_graph):
        distances = breadth_first_distances(line_graph, 0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4, 5: 5}

    def test_directionality_matters(self, line_graph):
        # From the end of the chain nothing is reachable.
        distances = breadth_first_distances(line_graph, 5)
        assert distances == {5: 0}

    def test_max_distance_truncates(self, line_graph):
        distances = breadth_first_distances(line_graph, 0, max_distance=2)
        assert distances == {0: 0, 1: 1, 2: 2}

    def test_max_distance_zero(self, line_graph):
        assert breadth_first_distances(line_graph, 0, max_distance=0) == {0: 0}

    def test_unknown_source(self, line_graph):
        with pytest.raises(KeyError):
            breadth_first_distances(line_graph, 99)

    def test_negative_max_distance(self, line_graph):
        with pytest.raises(ValueError):
            breadth_first_distances(line_graph, 0, max_distance=-1)

    def test_shortest_path_taken_when_multiple_routes(self):
        graph = SocialGraph.from_edges([(0, 1), (1, 2), (2, 3), (0, 3)])
        distances = breadth_first_distances(graph, 0)
        assert distances[3] == 1

    def test_matches_networkx_shortest_paths(self, small_graph):
        source = next(iter(small_graph.users()))
        ours = breadth_first_distances(small_graph, source)
        nx_lengths = nx.single_source_shortest_path_length(small_graph.to_networkx(), source)
        assert ours == {int(k): int(v) for k, v in nx_lengths.items()}


class TestFriendshipHopDistances:
    def test_excludes_the_source(self, line_graph):
        distances = friendship_hop_distances(line_graph, 0)
        assert 0 not in distances
        assert distances[1] == 1

    def test_unreachable_users_absent(self):
        graph = SocialGraph(4)
        graph.add_follow(0, 1)
        distances = friendship_hop_distances(graph, 0)
        assert set(distances) == {1}


class TestDistanceHistogram:
    def test_counts(self):
        distances = {1: 1, 2: 1, 3: 2, 4: 2, 5: 2, 6: 3}
        histogram = distance_histogram(distances)
        assert histogram == {1: 2, 2: 3, 3: 1}

    def test_max_distance_pads_with_zeros(self):
        histogram = distance_histogram({1: 1, 2: 3}, max_distance=5)
        assert histogram == {1: 1, 2: 0, 3: 1, 4: 0, 5: 0}

    def test_empty(self):
        assert distance_histogram({}) == {}


class TestGrouping:
    def test_group_users_by_distance(self):
        distances = {10: 1, 11: 1, 12: 2, 13: 3}
        groups = group_users_by_distance(distances)
        assert groups[1] == {10, 11}
        assert groups[2] == {12}
        assert groups[3] == {13}

    def test_explicit_distance_values(self):
        distances = {10: 1, 11: 2, 12: 7}
        groups = group_users_by_distance(distances, distance_values=[1, 2, 3])
        assert groups[3] == set()
        assert 7 not in groups


@settings(max_examples=30, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(lambda e: e[0] != e[1]),
        min_size=1,
        max_size=60,
    )
)
def test_bfs_matches_networkx_on_random_graphs(edges):
    graph = SocialGraph.from_edges(edges)
    source = edges[0][0]
    ours = breadth_first_distances(graph, source)
    nx_graph = graph.to_networkx()
    theirs = nx.single_source_shortest_path_length(nx_graph, source)
    assert ours == {int(k): int(v) for k, v in theirs.items()}


@settings(max_examples=30, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(lambda e: e[0] != e[1]),
        min_size=1,
        max_size=40,
    )
)
def test_distances_satisfy_triangle_step_property(edges):
    """Along any edge u -> v, dist(v) <= dist(u) + 1 whenever u is reachable."""
    graph = SocialGraph.from_edges(edges)
    source = edges[0][0]
    distances = breadth_first_distances(graph, source)
    for u, v in graph.edges():
        if u in distances:
            assert v in distances
            assert distances[v] <= distances[u] + 1
