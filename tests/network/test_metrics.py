"""Tests for graph structural metrics."""

import networkx as nx
import pytest

from repro.network.graph import SocialGraph
from repro.network.metrics import (
    average_clustering_coefficient,
    degree_histogram,
    reachable_fraction,
    reciprocity,
    triad_count,
)


class TestDegreeHistogram:
    def test_out_degrees(self, triangle_graph):
        histogram = degree_histogram(triangle_graph, direction="out")
        # Users 0 and 1 have out-degree 2; user 2 has 3; user 3 has 0.
        assert histogram == {0: 1, 2: 2, 3: 1}

    def test_in_degrees(self, triangle_graph):
        histogram = degree_histogram(triangle_graph, direction="in")
        assert histogram == {1: 1, 2: 3}

    def test_bad_direction(self, triangle_graph):
        with pytest.raises(ValueError):
            degree_histogram(triangle_graph, direction="sideways")


class TestReciprocity:
    def test_fully_reciprocal_triangle(self, triangle_graph):
        # 6 of the 7 edges are reciprocated (the pendant edge is not).
        assert reciprocity(triangle_graph) == pytest.approx(6 / 7)

    def test_one_way_chain(self, line_graph):
        assert reciprocity(line_graph) == 0.0

    def test_empty_graph(self):
        assert reciprocity(SocialGraph(3)) == 0.0


class TestClustering:
    def test_triangle_has_high_clustering(self, triangle_graph):
        assert average_clustering_coefficient(triangle_graph) > 0.4

    def test_chain_has_zero_clustering(self, line_graph):
        assert average_clustering_coefficient(line_graph) == 0.0

    def test_empty_graph(self):
        assert average_clustering_coefficient(SocialGraph()) == 0.0

    def test_matches_networkx_on_undirected_projection(self, small_graph):
        ours = average_clustering_coefficient(small_graph)
        undirected = small_graph.to_networkx().to_undirected()
        theirs = nx.average_clustering(undirected)
        assert ours == pytest.approx(theirs, abs=0.02)


class TestTriads:
    def test_triangle_count(self, triangle_graph):
        assert triad_count(triangle_graph) == 1

    def test_chain_has_no_triangles(self, line_graph):
        assert triad_count(line_graph) == 0


class TestReachability:
    def test_chain_from_head(self, line_graph):
        assert reachable_fraction(line_graph, 0) == 1.0

    def test_chain_from_tail(self, line_graph):
        assert reachable_fraction(line_graph, 5) == 0.0

    def test_single_user_graph(self):
        assert reachable_fraction(SocialGraph(1), 0) == 0.0
