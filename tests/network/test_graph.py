"""Tests for the SocialGraph container."""

import numpy as np
import pytest

from repro.network.graph import SocialGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = SocialGraph()
        assert graph.num_users == 0
        assert graph.num_edges == 0

    def test_pre_sized_graph(self):
        graph = SocialGraph(5)
        assert graph.num_users == 5
        assert set(graph.users()) == set(range(5))

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            SocialGraph(-1)

    def test_add_user_auto_id(self):
        graph = SocialGraph(3)
        new_id = graph.add_user()
        assert new_id == 3
        assert graph.has_user(3)

    def test_add_user_explicit_id(self):
        graph = SocialGraph()
        graph.add_user(10)
        assert graph.has_user(10)
        assert not graph.has_user(3)

    def test_add_user_idempotent(self):
        graph = SocialGraph(2)
        graph.add_follow(0, 1)
        graph.add_user(0)
        assert graph.num_edges == 1

    def test_add_user_rejects_negative_id(self):
        with pytest.raises(ValueError):
            SocialGraph().add_user(-3)

    def test_from_edges(self):
        graph = SocialGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        assert graph.num_users == 3
        assert graph.num_edges == 3


class TestEdges:
    def test_follow_direction(self):
        graph = SocialGraph(2)
        graph.add_follow(0, 1)  # 1 follows 0: information flows 0 -> 1
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)
        assert 1 in graph.followers(0)
        assert 0 in graph.followees(1)

    def test_degrees(self):
        graph = SocialGraph.from_edges([(0, 1), (0, 2), (3, 0)])
        assert graph.out_degree(0) == 2
        assert graph.in_degree(0) == 1
        assert graph.out_degree(3) == 1
        assert graph.in_degree(1) == 1

    def test_duplicate_edges_ignored(self):
        graph = SocialGraph(2)
        graph.add_follow(0, 1)
        graph.add_follow(0, 1)
        assert graph.num_edges == 1

    def test_self_follow_rejected(self):
        with pytest.raises(ValueError):
            SocialGraph(2).add_follow(1, 1)

    def test_add_edge_alias(self):
        graph = SocialGraph(2)
        graph.add_edge(0, 1)
        assert graph.has_edge(0, 1)

    def test_edges_iterator(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        graph = SocialGraph.from_edges(edges)
        assert sorted(graph.edges()) == sorted(edges)

    def test_unknown_user_raises(self):
        graph = SocialGraph(2)
        with pytest.raises(KeyError):
            graph.followers(5)
        with pytest.raises(KeyError):
            graph.out_degree(5)

    def test_followers_returns_frozenset(self):
        graph = SocialGraph.from_edges([(0, 1)])
        assert isinstance(graph.followers(0), frozenset)


class TestInterop:
    def test_networkx_round_trip(self):
        graph = SocialGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == graph.num_users
        assert nx_graph.number_of_edges() == graph.num_edges
        back = SocialGraph.from_networkx(nx_graph)
        assert sorted(back.edges()) == sorted(graph.edges())

    def test_adjacency_matrix(self):
        graph = SocialGraph.from_edges([(0, 1), (1, 2)])
        matrix = graph.adjacency_matrix()
        expected = np.array([[0, 1, 0], [0, 0, 1], [0, 0, 0]])
        assert np.array_equal(matrix, expected)

    def test_subgraph(self):
        graph = SocialGraph.from_edges([(0, 1), (1, 2), (2, 3), (0, 3)])
        sub = graph.subgraph([0, 1, 3])
        assert sub.num_users == 3
        assert sub.has_edge(0, 1)
        assert sub.has_edge(0, 3)
        assert not sub.has_edge(2, 3)

    def test_repr(self):
        graph = SocialGraph.from_edges([(0, 1)])
        assert "num_users=2" in repr(graph)
        assert "num_edges=1" in repr(graph)
