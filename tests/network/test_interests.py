"""Tests for the shared-interest distance metric (Equation 1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.interests import (
    build_user_contents,
    interest_distance,
    interest_distance_groups,
    interest_distances_from_source,
)


class TestInterestDistance:
    def test_identical_sets(self):
        assert interest_distance({1, 2, 3}, {1, 2, 3}) == 0.0

    def test_disjoint_sets(self):
        assert interest_distance({1, 2}, {3, 4}) == 1.0

    def test_partial_overlap(self):
        # |intersection| = 1, |union| = 3 -> distance = 1 - 1/3
        assert interest_distance({1, 2}, {2, 3}) == pytest.approx(2.0 / 3.0)

    def test_both_empty(self):
        assert interest_distance(set(), set()) == 1.0

    def test_one_empty(self):
        assert interest_distance({1, 2}, set()) == 1.0

    def test_subset(self):
        assert interest_distance({1, 2, 3, 4}, {1, 2}) == pytest.approx(0.5)

    def test_paper_example_values(self):
        # Two users sharing 3 of 10 distinct stories.
        a = set(range(7))
        b = set(range(4, 11))
        assert interest_distance(a, b) == pytest.approx(1 - 3 / 11)


class TestDistancesFromSource:
    def test_excludes_source(self):
        contents = {0: {1, 2}, 1: {1}, 2: {3}}
        distances = interest_distances_from_source(0, contents)
        assert set(distances) == {1, 2}
        assert distances[1] == pytest.approx(0.5)
        assert distances[2] == 1.0

    def test_unknown_source(self):
        with pytest.raises(KeyError):
            interest_distances_from_source(9, {0: {1}})


class TestGrouping:
    def test_group_labels_increase_with_distance(self):
        distances = {user: user / 10.0 for user in range(10)}
        groups = interest_distance_groups(distances, num_groups=5)
        # Users sorted by distance; closer users get smaller labels.
        assert groups[0] == 1
        assert groups[9] == 5
        for user in range(9):
            assert groups[user] <= groups[user + 1]

    def test_equal_population_binning(self):
        distances = {user: user / 100.0 for user in range(100)}
        groups = interest_distance_groups(distances, num_groups=5)
        sizes = [list(groups.values()).count(g) for g in range(1, 6)]
        assert sizes == [20, 20, 20, 20, 20]

    def test_no_group_is_empty_even_with_ties(self):
        distances = {user: 1.0 for user in range(50)}
        groups = interest_distance_groups(distances, num_groups=5)
        assert set(groups.values()) == {1, 2, 3, 4, 5}

    def test_fewer_users_than_groups(self):
        distances = {1: 0.2, 2: 0.8}
        groups = interest_distance_groups(distances, num_groups=5)
        assert groups[1] == 1
        assert groups[2] == 2

    def test_explicit_boundaries(self):
        distances = {1: 0.1, 2: 0.3, 3: 0.5, 4: 0.9}
        groups = interest_distance_groups(
            distances, num_groups=4, boundaries=[0.25, 0.5, 0.75, 1.0]
        )
        assert groups == {1: 1, 2: 2, 3: 2, 4: 4}

    def test_boundary_validation(self):
        with pytest.raises(ValueError):
            interest_distance_groups({1: 0.5}, num_groups=3, boundaries=[0.5, 0.4, 1.0])
        with pytest.raises(ValueError):
            interest_distance_groups({1: 0.5}, num_groups=3, boundaries=[0.5, 1.0])

    def test_empty_input(self):
        assert interest_distance_groups({}, num_groups=5) == {}

    def test_rejects_out_of_range_distances(self):
        with pytest.raises(ValueError):
            interest_distance_groups({1: 1.5}, num_groups=3)

    def test_rejects_zero_groups(self):
        with pytest.raises(ValueError):
            interest_distance_groups({1: 0.5}, num_groups=0)

    def test_deterministic_assignment(self):
        distances = {user: (user * 37 % 11) / 11.0 for user in range(40)}
        first = interest_distance_groups(distances, num_groups=5)
        second = interest_distance_groups(dict(reversed(list(distances.items()))), num_groups=5)
        assert first == second


class TestBuildUserContents:
    def test_builds_sets(self):
        votes = [(1, 100), (1, 101), (2, 100), (1, 100)]
        contents = build_user_contents(votes)
        assert contents == {1: {100, 101}, 2: {100}}

    def test_empty(self):
        assert build_user_contents([]) == {}


# ------------------------------------------------------------------------- #
# Property-based tests: Equation 1 is a proper dissimilarity on sets.
# ------------------------------------------------------------------------- #
set_strategy = st.sets(st.integers(0, 30), max_size=15)


@settings(max_examples=100, deadline=None)
@given(a=set_strategy, b=set_strategy)
def test_distance_is_symmetric(a, b):
    assert interest_distance(a, b) == pytest.approx(interest_distance(b, a))


@settings(max_examples=100, deadline=None)
@given(a=set_strategy, b=set_strategy)
def test_distance_is_bounded(a, b):
    value = interest_distance(a, b)
    assert 0.0 <= value <= 1.0


@settings(max_examples=100, deadline=None)
@given(a=set_strategy)
def test_distance_to_self_is_zero_for_nonempty(a):
    if a:
        assert interest_distance(a, a) == 0.0


@settings(max_examples=100, deadline=None)
@given(a=set_strategy, b=set_strategy, c=set_strategy)
def test_jaccard_distance_triangle_inequality(a, b, c):
    """The Jaccard distance is a metric, so the triangle inequality holds."""
    if not (a or b or c):
        return
    ab = interest_distance(a, b)
    bc = interest_distance(b, c)
    ac = interest_distance(a, c)
    assert ac <= ab + bc + 1e-12
