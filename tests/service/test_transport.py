"""Tests for the daemon transport layer: addresses, registry, listeners.

The round-trip tests serve a real daemon per transport and drive it with
:class:`DaemonClient.connect` on the textual address, so the full chain
(grammar -> registry -> listener -> session -> client connector) is
covered, including record-for-record equality between a TCP daemon and a
Unix-socket daemon on the same manifest.
"""

import asyncio
import json
import socket
import threading

import pytest

from repro.core.errors import (
    AddressInUseError,
    DaemonConnectionError,
    UnknownTransportError,
)
from repro.service import DaemonClient, PredictionDaemon
from repro.service.transport import (
    Address,
    AddressError,
    TransportSpec,
    UnixListener,
    available_transports,
    create_listener,
    get_transport,
    open_client_connection,
    parse_address,
    register_transport,
    transport_descriptions,
    unregister_transport,
)

HOURS = 4


def inline_story(name: str, scale: float = 1.0) -> dict:
    return {
        "name": name,
        "distances": [1, 2, 3, 4, 5],
        "times": [1, 2, 3, 4],
        "values": [
            [scale * v for v in row]
            for row in (
                [5.0, 2.0, 2.5, 1.5, 1.0],
                [7.0, 3.0, 3.5, 2.0, 1.4],
                [9.0, 4.2, 4.6, 2.6, 1.9],
                [11.0, 5.5, 5.8, 3.3, 2.5],
            )
        ],
    }


def manifest_payload(*stories) -> dict:
    return {"metric": "hops", "hours": HOURS, "stories": list(stories)}


async def collect_submission(client: DaemonClient, manifest: dict, **kwargs):
    """Drive one submit; return (accepted, results-by-story, job, errors)."""
    accepted, results, job_event, errors = None, {}, None, []
    async for event in client.submit(manifest, **kwargs):
        kind = event["event"]
        if kind == "accepted":
            accepted = event
        elif kind == "result":
            results[event["story"]] = event
        elif kind == "job":
            job_event = event
        elif kind == "error":
            errors.append(event)
    return accepted, results, job_event, errors


class TestAddressGrammar:
    def test_unix_tcp_stdio_and_bare_path(self):
        assert parse_address("unix:/tmp/d.sock") == Address(
            scheme="unix", path="/tmp/d.sock"
        )
        assert parse_address("tcp:127.0.0.1:7631") == Address(
            scheme="tcp", host="127.0.0.1", port=7631
        )
        assert parse_address("stdio") == Address(scheme="stdio")
        # Backward compatibility: every pre-transport --socket PATH value.
        assert parse_address("/tmp/d.sock") == Address(
            scheme="unix", path="/tmp/d.sock"
        )
        assert parse_address("relative/d.sock").scheme == "unix"

    def test_address_passthrough_and_str_round_trip(self):
        for spec in ("unix:/tmp/d.sock", "tcp:localhost:80", "stdio"):
            address = parse_address(spec)
            assert parse_address(address) is address
            assert parse_address(str(address)) == address

    def test_malformed_addresses_raise(self):
        for bad in ("", "  ", "unix:", "tcp:", "tcp:7631", "tcp:host:port",
                    "tcp:host:", "tcp:host:99999"):
            with pytest.raises(AddressError):
                parse_address(bad)

    def test_tcp_ipv6_style_host_uses_last_colon(self):
        address = parse_address("tcp:::1:7631")
        assert address.host == "::1" and address.port == 7631


class TestTransportRegistry:
    def test_builtin_transports_registered(self):
        assert available_transports() == ("stdio", "tcp", "unix")
        descriptions = transport_descriptions()
        assert set(descriptions) == {"stdio", "tcp", "unix"}
        assert all(descriptions.values())

    def test_unknown_scheme_raises_with_choices(self):
        with pytest.raises(UnknownTransportError) as excinfo:
            get_transport("tls")
        message = str(excinfo.value)
        assert "tls" in message and "unix" in message

    def test_register_and_unregister_round_trip(self):
        spec = TransportSpec(
            scheme="test-null",
            description="a test transport",
            listener=UnixListener,
        )
        register_transport(spec)
        try:
            assert get_transport("test-null") is spec
            assert "test-null" in available_transports()
        finally:
            unregister_transport("test-null")
        with pytest.raises(UnknownTransportError):
            get_transport("test-null")

    def test_stdio_cannot_be_dialled(self):
        async def run():
            with pytest.raises(AddressError) as excinfo:
                await open_client_connection("stdio")
            return str(excinfo.value)

        assert "cannot be connected" in asyncio.run(run())

    def test_create_listener_dispatches_on_scheme(self, tmp_path):
        listener = create_listener(f"unix:{tmp_path}/d.sock")
        assert listener.scheme == "unix"
        assert create_listener("tcp:127.0.0.1:0").scheme == "tcp"
        assert create_listener("stdio").scheme == "stdio"


async def _serve_and_ping(daemon, serve_coroutine, address_of):
    """Start a serve task, ping over DaemonClient.connect, shut down."""
    server = asyncio.ensure_future(serve_coroutine)
    try:
        deadline = asyncio.get_running_loop().time() + 5.0
        while True:
            try:
                client = await DaemonClient.connect(address_of())
                break
            except OSError:
                if server.done() or asyncio.get_running_loop().time() > deadline:
                    await server
                    raise
                await asyncio.sleep(0.01)
        async with client:
            pong = await client.ping()
            stats = await client.stats()
            await client.shutdown()
        return pong, stats
    finally:
        await asyncio.gather(server, return_exceptions=True)


class TestListenerRoundTrips:
    def test_unix_serve_and_connect(self, tmp_path):
        socket_path = str(tmp_path / "d.sock")
        daemon = PredictionDaemon(max_workers=1)
        pong, stats = asyncio.run(
            _serve_and_ping(
                daemon, daemon.serve(f"unix:{socket_path}"), lambda: f"unix:{socket_path}"
            )
        )
        assert pong == {"event": "pong"}
        assert stats["jobs"]["total"] == 0

    def test_tcp_serve_and_connect_on_ephemeral_port(self):
        daemon = PredictionDaemon(max_workers=1)

        def address():
            # Port 0 resolves to the kernel-assigned port once bound.
            listener = daemon.listener
            if listener is None or listener.address.port == 0:
                raise ConnectionRefusedError("not bound yet")
            return f"tcp:127.0.0.1:{listener.address.port}"

        pong, stats = asyncio.run(
            _serve_and_ping(daemon, daemon.serve("tcp:127.0.0.1:0"), address)
        )
        assert pong == {"event": "pong"}

    def test_tcp_and_unix_results_record_for_record_identical(self, tmp_path):
        manifest = manifest_payload(
            inline_story("alpha"), inline_story("beta", scale=1.7)
        )

        async def run_over(spec_factory):
            daemon = PredictionDaemon(max_workers=2)
            server = asyncio.ensure_future(daemon.serve(spec_factory(None)))
            deadline = asyncio.get_running_loop().time() + 5.0
            try:
                while True:
                    try:
                        client = await DaemonClient.connect(spec_factory(daemon))
                        break
                    except OSError:
                        if (
                            server.done()
                            or asyncio.get_running_loop().time() > deadline
                        ):
                            await server
                            raise
                        await asyncio.sleep(0.01)
                async with client:
                    _, results, _, errors = await collect_submission(
                        client, manifest, job_id="same-job"
                    )
                    await client.shutdown()
                assert not errors
                return results
            finally:
                await asyncio.gather(server, return_exceptions=True)

        socket_path = str(tmp_path / "d.sock")
        unix_results = asyncio.run(run_over(lambda _: f"unix:{socket_path}"))

        def tcp_spec(daemon):
            if daemon is None:
                return "tcp:127.0.0.1:0"
            listener = daemon.listener
            if listener is None or listener.address.port == 0:
                raise ConnectionRefusedError("not bound yet")
            return f"tcp:127.0.0.1:{listener.address.port}"

        tcp_results = asyncio.run(run_over(tcp_spec))
        # Record-for-record: the transport must never leak into results.
        assert set(unix_results) == set(tcp_results) == {"alpha", "beta"}
        for name in unix_results:
            assert json.dumps(unix_results[name], sort_keys=True) == json.dumps(
                tcp_results[name], sort_keys=True
            )


class TestStaleSocketReclaim:
    def test_stale_socket_file_is_reclaimed(self, tmp_path):
        socket_path = str(tmp_path / "d.sock")
        # A crashed daemon's leftover: a socket file nobody is listening on.
        leftover = socket.socket(socket.AF_UNIX)
        leftover.bind(socket_path)
        leftover.close()  # closed without accept: connects will be refused

        daemon = PredictionDaemon(max_workers=1)
        pong, _ = asyncio.run(
            _serve_and_ping(
                daemon, daemon.serve_unix(socket_path), lambda: socket_path
            )
        )
        assert pong == {"event": "pong"}

    def test_live_daemon_raises_address_in_use(self, tmp_path):
        socket_path = str(tmp_path / "d.sock")

        async def run():
            first = PredictionDaemon(max_workers=1)
            server = asyncio.ensure_future(first.serve_unix(socket_path))
            deadline = asyncio.get_running_loop().time() + 5.0
            try:
                while True:
                    try:
                        probe = await DaemonClient.connect(socket_path)
                        break
                    except OSError:
                        if server.done():
                            await server
                        assert asyncio.get_running_loop().time() < deadline
                        await asyncio.sleep(0.01)
                second = PredictionDaemon(max_workers=1)
                with pytest.raises(AddressInUseError) as excinfo:
                    await second.serve_unix(socket_path)
                assert "already listening" in str(excinfo.value)
                # The live daemon and its socket survived the probe.
                async with probe:
                    assert (await probe.ping())["event"] == "pong"
                    await probe.shutdown()
                return True
            finally:
                await asyncio.gather(server, return_exceptions=True)

        assert asyncio.run(run())


class _HalfDeadDaemon:
    """A fake daemon that accepts one client, answers, then hangs up.

    Runs plain blocking sockets on its own thread so client-side tests
    (asyncio in the main thread) see a real peer disappear mid-stream.
    """

    def __init__(self, socket_path: str, responses: "list[bytes]") -> None:
        self.socket_path = socket_path
        self.responses = responses
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def __enter__(self) -> "_HalfDeadDaemon":
        self._thread.start()
        assert self._ready.wait(timeout=5.0)
        return self

    def __exit__(self, *exc) -> None:
        self._thread.join(timeout=5.0)

    def _serve(self) -> None:
        server = socket.socket(socket.AF_UNIX)
        server.bind(self.socket_path)
        server.listen(1)
        self._ready.set()
        conn, _ = server.accept()
        conn.recv(65536)  # the request line
        for chunk in self.responses:
            conn.sendall(chunk)
        conn.close()  # mid-stream EOF
        server.close()


class TestMidStreamEof:
    def test_receive_raises_typed_error_on_clean_eof(self, tmp_path):
        socket_path = str(tmp_path / "dead.sock")
        accepted = (
            json.dumps({"event": "accepted", "id": "j", "stories": ["a"]}) + "\n"
        ).encode()

        async def run():
            async with await DaemonClient.connect_unix(socket_path) as client:
                events = []
                with pytest.raises(DaemonConnectionError) as excinfo:
                    async for event in client.submit({"stories": []}):
                        events.append(event)
                return events, str(excinfo.value)

        with _HalfDeadDaemon(socket_path, [accepted]):
            events, message = asyncio.run(run())
        # Events before the hangup were delivered; then the typed error.
        assert [e["event"] for e in events] == ["accepted"]
        assert "mid-stream" in message

    def test_receive_raises_typed_error_on_torn_line(self, tmp_path):
        socket_path = str(tmp_path / "dead.sock")

        async def run():
            async with await DaemonClient.connect_unix(socket_path) as client:
                with pytest.raises(DaemonConnectionError) as excinfo:
                    await client.request({"op": "ping"})
                return str(excinfo.value)

        # A partial event line with no newline: the daemon died mid-write.
        with _HalfDeadDaemon(socket_path, [b'{"event": "po']):
            message = asyncio.run(run())
        assert "part-way" in message

    def test_typed_error_is_still_a_connection_error(self):
        # Pre-transport callers catch ConnectionError; they keep working.
        assert issubclass(DaemonConnectionError, ConnectionError)
