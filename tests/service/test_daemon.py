"""Tests for the long-lived prediction daemon and its JSON-lines protocol.

Transport coverage uses a Unix socket served inside the test's event loop
(one subprocess test exercises the stdio transport through the real CLI).
The load-bearing property mirrors the service tests: the daemon adds
transport and scheduling, never numerics -- its streamed results must be
bit-identical to the synchronous :class:`BatchPredictor`.
"""

import asyncio
import contextlib
import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.core.prediction import BatchPredictor
from repro.service import (
    ClientQuota,
    DaemonClient,
    PredictionDaemon,
    PredictionService,
    parse_manifest,
    resolve_manifest,
)

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

HOURS = 4
TRAINING_TIMES = [float(t) for t in range(1, HOURS + 1)]


def inline_story(name: str, scale: float = 1.0) -> dict:
    return {
        "name": name,
        "distances": [1, 2, 3, 4, 5],
        "times": [1, 2, 3, 4],
        "values": [
            [scale * v for v in row]
            for row in (
                [5.0, 2.0, 2.5, 1.5, 1.0],
                [7.0, 3.0, 3.5, 2.0, 1.4],
                [9.0, 4.2, 4.6, 2.6, 1.9],
                [11.0, 5.5, 5.8, 3.3, 2.5],
            )
        ],
    }


def manifest_payload(*stories) -> dict:
    return {"metric": "hops", "hours": HOURS, "stories": list(stories)}


@contextlib.asynccontextmanager
async def running_daemon(tmp_path, **daemon_kwargs):
    """A daemon serving a Unix socket in this loop; shut down on exit."""
    socket_path = str(tmp_path / "daemon.sock")
    daemon = PredictionDaemon(**daemon_kwargs)
    server = asyncio.ensure_future(daemon.serve_unix(socket_path))
    deadline = time.monotonic() + 5.0
    while not os.path.exists(socket_path):
        if server.done() or time.monotonic() > deadline:
            await server  # surface the startup error
            raise RuntimeError("daemon socket never appeared")
        await asyncio.sleep(0.005)
    try:
        yield socket_path, daemon
    finally:
        if not server.done():
            try:
                async with await DaemonClient.connect_unix(socket_path) as client:
                    await client.shutdown()
            except (ConnectionError, OSError):
                server.cancel()
        await asyncio.gather(server, return_exceptions=True)


async def collect_submission(client: DaemonClient, manifest: dict, **kwargs):
    """Drive one submit; return (accepted, results-by-story, job, errors)."""
    accepted, results, job_event, errors = None, {}, None, []
    async for event in client.submit(manifest, **kwargs):
        kind = event["event"]
        if kind == "accepted":
            accepted = event
        elif kind == "result":
            results[event["story"]] = event
        elif kind == "job":
            job_event = event
        elif kind == "error":
            errors.append(event)
    return accepted, results, job_event, errors


class TestProtocolFraming:
    def test_malformed_and_unknown_requests_get_error_events(self, tmp_path):
        async def run():
            async with running_daemon(tmp_path) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    responses = []
                    for raw in (
                        "this is not json",
                        '["an", "array"]',
                        '{"op": "frobnicate"}',
                        '{"op": "submit"}',
                        '{"op": "submit", "manifest": {}, "surprise": 1}',
                        '{"op": "submit", "manifest": {"stories": ["s1"]}}',
                        '{"op": "status", "id": "nope"}',
                    ):
                        client._writer.write((raw + "\n").encode())
                        await client._writer.drain()
                        responses.append(await client._receive())
                    # The connection survived all of it.
                    assert (await client.ping())["event"] == "pong"
                    return responses

        responses = asyncio.run(run())
        assert all(event["event"] == "error" for event in responses)
        assert "invalid JSON" in responses[0]["error"]
        assert "must be an object" in responses[1]["error"]
        assert "unknown op 'frobnicate'" in responses[2]["error"]
        assert "needs a 'manifest'" in responses[3]["error"]
        assert "unknown submit field(s) ['surprise']" in responses[4]["error"]
        assert "invalid manifest" in responses[5]["error"]  # corpus ref, no block
        assert "unknown job 'nope'" in responses[6]["error"]

    def test_empty_manifest_and_bad_timeout_rejected(self, tmp_path):
        async def run():
            async with running_daemon(tmp_path) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    empty = await client.request(
                        {"op": "submit", "manifest": {"stories": []}}
                    )
                    bad_timeout = await client.request(
                        {
                            "op": "submit",
                            "manifest": manifest_payload(inline_story("a")),
                            "timeout": -3,
                        }
                    )
                    return empty, bad_timeout

        empty, bad_timeout = asyncio.run(run())
        assert "contains no stories" in empty["error"]
        assert "'timeout' must be a positive number" in bad_timeout["error"]


class TestSubmission:
    def test_results_bit_identical_to_batch_predictor(self, tmp_path):
        manifest = manifest_payload(
            inline_story("alpha"), inline_story("beta", scale=0.8)
        )

        async def run():
            async with running_daemon(tmp_path, max_workers=2) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    return await collect_submission(client, manifest, job_id="bits")

        accepted, results, job_event, errors = asyncio.run(run())
        assert not errors
        assert accepted["id"] == "bits"
        assert accepted["stories"] == ["alpha", "beta"] and accepted["skipped"] == []
        assert job_event["status"] == "completed"
        assert job_event["stories"]["succeeded"] == 2

        surfaces = resolve_manifest(
            parse_manifest(manifest), None, TRAINING_TIMES
        ).surfaces
        reference = (
            BatchPredictor()
            .fit(surfaces, training_times=TRAINING_TIMES)
            .evaluate(surfaces, times=TRAINING_TIMES[1:])
        )
        for name in surfaces:
            record = results[name]
            assert record["status"] == "succeeded"
            # JSON floats round-trip exactly: bit-identical means ==.
            assert record["overall_accuracy"] == reference[name].overall_accuracy
            assert (
                record["parameters"]
                == reference[name].parameters.to_json_dict()
            )
            expected_by_distance = {
                str(d): reference[name].accuracy_at_distance(d)
                for d in reference[name].predicted.distances
            }
            assert record["accuracy_by_distance"] == expected_by_distance

    def test_skipped_story_streams_a_skipped_result(self, tmp_path):
        empty = inline_story("empty")
        empty["values"][0] = [0.0] * 5  # nothing influenced in hour 1
        manifest = manifest_payload(inline_story("good"), empty)

        async def run():
            async with running_daemon(tmp_path) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    return await collect_submission(client, manifest)

        accepted, results, job_event, errors = asyncio.run(run())
        assert not errors
        assert accepted["skipped"] == ["empty"]
        assert results["empty"]["status"] == "skipped"
        assert "first observed hour" in results["empty"]["reason"]
        assert results["good"]["status"] == "succeeded"
        assert job_event["stories"]["skipped"] == 1

    def test_duplicate_job_id_rejected_generated_ids_unique(self, tmp_path):
        manifest = manifest_payload(inline_story("a"))

        async def run():
            async with running_daemon(tmp_path) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    first = await collect_submission(client, manifest, job_id="dup")
                    second = await collect_submission(client, manifest, job_id="dup")
                    third = await collect_submission(client, manifest)
                    fourth = await collect_submission(client, manifest)
                    return first, second, third, fourth

        first, second, third, fourth = asyncio.run(run())
        assert first[2]["status"] == "completed"
        assert second[3] and "already exists" in second[3][0]["error"]
        generated = {third[0]["id"], fourth[0]["id"]}
        assert len(generated) == 2 and all(i.startswith("job-") for i in generated)

    def test_generated_id_dodges_explicit_client_id(self, tmp_path):
        # A client explicitly named its job "job-1"; the first generated id
        # must not collide with (and overwrite) it.
        manifest = manifest_payload(inline_story("a"))

        async def run():
            async with running_daemon(tmp_path) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    explicit = await collect_submission(client, manifest, job_id="job-1")
                    generated = await collect_submission(client, manifest)
                    status = await client.status("job-1")
                    return explicit, generated, status

        explicit, generated, status = asyncio.run(run())
        assert explicit[0]["id"] == "job-1"
        assert generated[0]["id"] != "job-1"
        assert status["stories"]["succeeded"] == 1  # job-1 untouched

    def test_completed_jobs_are_pruned_beyond_retention_cap(self, tmp_path):
        manifest = manifest_payload(inline_story("a"))

        async def run():
            async with running_daemon(tmp_path, max_completed_jobs=2) as (
                socket_path,
                daemon,
            ):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    for index in range(4):
                        await collect_submission(client, manifest, job_id=f"j{index}")
                    listing = await client.status()
                    evicted = await client.status("j0")
                    return listing, evicted, set(daemon._jobs)

        listing, evicted, retained = asyncio.run(run())
        assert retained == {"j2", "j3"}  # oldest completed evicted
        assert [job["id"] for job in listing["jobs"]] == ["j2", "j3"]
        assert evicted["event"] == "error" and "unknown job" in evicted["error"]

    def test_concurrent_jobs_over_separate_connections(self, tmp_path):
        async def run():
            async with running_daemon(tmp_path, max_workers=2) as (socket_path, _):
                async def one(job_id, scale):
                    async with await DaemonClient.connect_unix(socket_path) as client:
                        return await collect_submission(
                            client,
                            manifest_payload(inline_story(f"{job_id}-story", scale)),
                            job_id=job_id,
                        )

                outcomes = await asyncio.gather(one("left", 1.0), one("right", 0.7))
                async with await DaemonClient.connect_unix(socket_path) as client:
                    stats = await client.stats()
                return outcomes, stats

        outcomes, stats = asyncio.run(run())
        for accepted, results, job_event, errors in outcomes:
            assert not errors
            assert job_event["stories"]["succeeded"] == 1
        assert stats["jobs"] == {"active": 0, "completed": 2, "total": 2}
        # Both jobs shared one service: its counters aggregate across jobs.
        assert stats["service"]["stories_solved"] == 2

    def test_story_timeout_streams_timed_out_result(self, tmp_path, monkeypatch):
        original = PredictionService._solve_shard

        def slow(self, jobs):
            time.sleep(0.5)
            return original(self, jobs)

        monkeypatch.setattr(PredictionService, "_solve_shard", slow)

        async def run():
            async with running_daemon(tmp_path) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    return await collect_submission(
                        client,
                        manifest_payload(inline_story("slowpoke")),
                        timeout=0.1,
                    )

        accepted, results, job_event, errors = asyncio.run(run())
        assert not errors
        assert accepted["timeout"] == 0.1
        assert results["slowpoke"]["status"] == "timed_out"
        assert "deadline" in results["slowpoke"]["error"]
        assert job_event["stories"]["timed_out"] == 1


class TestStatusAndStats:
    def test_status_reports_counts_and_listing(self, tmp_path):
        async def run():
            async with running_daemon(tmp_path) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    await collect_submission(
                        client, manifest_payload(inline_story("a")), job_id="tracked"
                    )
                    single = await client.status("tracked")
                    listing = await client.status()
                    return single, listing

        single, listing = asyncio.run(run())
        assert single["id"] == "tracked" and single["status"] == "completed"
        assert single["stories"]["succeeded"] == 1
        assert [job["id"] for job in listing["jobs"]] == ["tracked"]

    def test_stats_exposes_service_counters_and_telemetry(self, tmp_path):
        async def run():
            async with running_daemon(tmp_path, autotune=True) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    await collect_submission(
                        client, manifest_payload(inline_story("a"))
                    )
                    return await client.stats()

        stats = asyncio.run(run())
        assert stats["uptime_seconds"] > 0.0
        assert stats["service"]["succeeded"] == 1
        assert stats["service"]["autotuner"]["observations"] == 1
        # The worker-pool identity travels through daemon-stats, so
        # operators can tell a process-backed daemon from a thread-backed
        # one without reading its launch flags.
        assert stats["service"]["executor"] == "thread"
        assert stats["service"]["workers"] == stats["service"]["max_workers"]
        assert stats["service"]["executor_info"]["executor"] == "thread"
        metrics = stats["metrics"]
        assert metrics["daemon.jobs_submitted"] == 1
        assert metrics["service.jobs_succeeded"] == 1
        assert metrics["service.shard_solve_seconds"]["count"] == 1
        assert metrics['service.worker_pool_size{executor="thread"}'] >= 1

    def test_daemon_runs_on_the_process_executor(self, tmp_path):
        # The daemon forwards executor selection to its service; results
        # must stream back from process workers exactly like thread ones.
        async def run():
            async with running_daemon(
                tmp_path, executor="process", max_workers=2
            ) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    outcome = await collect_submission(
                        client, manifest_payload(inline_story("a"))
                    )
                    return outcome, await client.stats()

        (accepted, results, job_event, errors), stats = asyncio.run(run())
        assert not errors
        assert results["a"]["status"] == "succeeded"
        assert stats["service"]["executor"] == "process"
        assert stats["service"]["executor_info"]["respawns"] == 0
        assert stats["service"]["executor_info"]["start_method"]


class TestShutdown:
    def test_shutdown_drains_inflight_jobs_before_exiting(self, tmp_path):
        # A job submitted on one connection must still stream its results
        # even when another connection requests shutdown right away.
        async def run():
            async with running_daemon(tmp_path) as (socket_path, _):
                submitter = await DaemonClient.connect_unix(socket_path)
                stream = submitter.submit(
                    manifest_payload(inline_story("draining")), job_id="draining"
                )
                accepted = await stream.__anext__()
                assert accepted["event"] == "accepted"
                async with await DaemonClient.connect_unix(socket_path) as other:
                    ack = await other.shutdown()
                assert ack == {"event": "shutdown", "drain": True}
                events = [event async for event in stream]
                await submitter.close()
                return events

        events = asyncio.run(run())
        kinds = [event["event"] for event in events]
        assert "result" in kinds and kinds[-1] == "job"
        (result,) = [e for e in events if e["event"] == "result"]
        assert result["status"] == "succeeded"

    def test_submit_after_shutdown_gets_error_not_hang(self, tmp_path):
        async def run():
            async with running_daemon(tmp_path) as (socket_path, daemon):
                daemon._accepting = False  # as the shutdown op does first
                async with await DaemonClient.connect_unix(socket_path) as client:
                    return await client.request(
                        {"op": "submit", "manifest": manifest_payload(inline_story("a"))}
                    )

        response = asyncio.run(run())
        assert response["event"] == "error"
        assert "shutting down" in response["error"]


class TestCliSubmitExitCodes:
    def test_all_skipped_job_exits_1(self, tmp_path, capsys):
        # `repro submit` must mirror serve-batch: nothing scored (every
        # story skipped) is exit 1, not a silent 0.
        from repro.cli import main

        empty = inline_story("void")
        empty["values"] = [[0.0] * 5 for _ in range(4)]
        manifest_path = tmp_path / "skipped.json"
        manifest_path.write_text(json.dumps(manifest_payload(empty)))

        async def run():
            async with running_daemon(tmp_path) as (socket_path, _):
                # The CLI spins its own event loop, so run it off-loop.
                return await asyncio.get_running_loop().run_in_executor(
                    None,
                    main,
                    ["submit", "--socket", socket_path, "--manifest", str(manifest_path)],
                )

        exit_code = asyncio.run(run())
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "every story in the manifest was skipped" in captured.err
        (record,) = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert record["status"] == "skipped"


class TestStdioTransport:
    def test_cli_daemon_over_pipes_end_to_end(self):
        requests = "\n".join(
            json.dumps(line)
            for line in (
                {"op": "ping"},
                {
                    "op": "submit",
                    "manifest": manifest_payload(inline_story("piped")),
                    "id": "stdio-job",
                },
                {"op": "stats"},
            )
        )
        process = subprocess.run(
            [sys.executable, "-m", "repro", "daemon"],
            input=requests + "\n",
            capture_output=True,
            text=True,
            timeout=120,
            env={**os.environ, "PYTHONPATH": REPO_SRC},
        )
        assert process.returncode == 0, process.stderr
        events = [json.loads(line) for line in process.stdout.splitlines()]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "pong"
        assert "accepted" in kinds and "job" in kinds
        (result,) = [e for e in events if e["event"] == "result"]
        assert result["status"] == "succeeded" and result["story"] == "piped"
        (stats,) = [e for e in events if e["event"] == "stats"]
        assert stats["jobs"]["total"] == 1
        assert "daemon stopped" in process.stderr

    def test_shutdown_op_exits_even_with_stdin_held_open(self):
        # The README promises a shutdown request drains and exits; that must
        # hold while the client keeps the pipe open waiting for the exit --
        # the read loop may not stay parked in readline().
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "daemon"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": REPO_SRC},
        )
        try:
            process.stdin.write(json.dumps({"op": "shutdown"}) + "\n")
            process.stdin.flush()
            # stdin deliberately left open.
            process.wait(timeout=60)
        finally:
            process.kill()
        assert process.returncode == 0
        ack = json.loads(process.stdout.readline())
        assert ack == {"drain": True, "event": "shutdown"}


class TestClientQuota:
    """Per-client quotas: typed rejections, isolation between connections."""

    def test_quota_bounds_validated(self):
        import pytest

        with pytest.raises(ValueError, match="max_jobs"):
            ClientQuota(max_jobs=0)
        with pytest.raises(ValueError, match="max_stories"):
            ClientQuota(max_stories=-1)
        assert ClientQuota().unlimited
        assert not ClientQuota(max_jobs=3).unlimited

    def test_job_quota_rejects_second_inflight_submit(self, tmp_path, monkeypatch):
        original = PredictionService._solve_shard

        def slow(self, jobs):
            time.sleep(0.6)
            return original(self, jobs)

        monkeypatch.setattr(PredictionService, "_solve_shard", slow)

        async def run():
            quota = ClientQuota(max_jobs=1)
            async with running_daemon(tmp_path, quota=quota) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as first:
                    await first._send(
                        {
                            "op": "submit",
                            "manifest": manifest_payload(inline_story("a")),
                            "id": "hog",
                        }
                    )
                    accepted = await first._receive()
                    # The same client's second in-flight job busts the quota.
                    await first._send(
                        {
                            "op": "submit",
                            "manifest": manifest_payload(inline_story("b")),
                            "id": "greedy",
                        }
                    )
                    rejection = await first._receive()
                    # A different connection is a different client: its
                    # budget is untouched by the hog.
                    async with await DaemonClient.connect_unix(socket_path) as second:
                        _, _, other_job, other_errors = await collect_submission(
                            second,
                            manifest_payload(inline_story("c")),
                            job_id="other",
                        )
                    # Drain the hog's stream; completion releases its slot.
                    while True:
                        event = await first._receive()
                        if event.get("event") == "job":
                            break
                    _, _, retry_job, retry_errors = await collect_submission(
                        first, manifest_payload(inline_story("d")), job_id="retry"
                    )
                    async with await DaemonClient.connect_unix(socket_path) as probe:
                        stats = await probe.stats()
                return accepted, rejection, (other_job, other_errors), (
                    retry_job,
                    retry_errors,
                ), stats

        accepted, rejection, other, retry, stats = asyncio.run(run())
        assert accepted["event"] == "accepted" and accepted["id"] == "hog"
        assert rejection["event"] == "error" and rejection["id"] == "greedy"
        assert rejection["error_type"] == "quota_exceeded"
        assert rejection["quota"] == {
            "kind": "jobs",
            "limit": 1,
            "in_flight": 1,
            "requested": 1,
        }
        assert "client quota exceeded" in rejection["error"]
        other_job, other_errors = other
        assert not other_errors and other_job["stories"]["succeeded"] == 1
        retry_job, retry_errors = retry
        assert not retry_errors and retry_job["stories"]["succeeded"] == 1
        assert stats["metrics"]["daemon.quota_rejections"] == 1
        assert stats["metrics"]['daemon.quota_rejections{kind="jobs"}'] == 1
        # The rejected job never existed: only the accepted ones are known.
        assert stats["jobs"]["total"] == 3

    def test_story_quota_rejects_oversized_manifest_whole(self, tmp_path):
        async def run():
            quota = ClientQuota(max_stories=1)
            async with running_daemon(tmp_path, quota=quota) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    _, _, _, errors = await collect_submission(
                        client,
                        manifest_payload(inline_story("a"), inline_story("b")),
                        job_id="big",
                    )
                    # A manifest within budget still goes through afterwards.
                    _, _, job_event, ok_errors = await collect_submission(
                        client, manifest_payload(inline_story("solo"))
                    )
                return errors, job_event, ok_errors

        errors, job_event, ok_errors = asyncio.run(run())
        (rejection,) = errors
        assert rejection["error_type"] == "quota_exceeded"
        assert rejection["quota"] == {
            "kind": "stories",
            "limit": 1,
            "in_flight": 0,
            "requested": 2,
        }
        assert not ok_errors and job_event["stories"]["succeeded"] == 1


class TestTraceOp:
    def test_trace_op_returns_well_formed_span_tree(self, tmp_path):
        from repro.service.tracing import span_tree, validate_trace

        async def run():
            async with running_daemon(tmp_path, trace=True) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    await collect_submission(
                        client, manifest_payload(inline_story("a")), job_id="traced"
                    )
                    return await client.trace("traced")

        payload = asyncio.run(run())
        assert payload["event"] == "trace" and payload["id"] == "traced"
        trace_id = payload["trace"]
        records = payload["spans"]
        assert trace_id and records
        assert validate_trace(records, trace_id) == []
        (root,) = span_tree(records, trace_id)
        assert root.name == "job"
        assert root.record["attributes"]["job"] == "traced"
        names = {r["name"] for r in records}
        # Every hot boundary shows up: request parse, quota check, manifest
        # resolution, queueing, the solve itself and the result emission.
        assert {
            "session.parse",
            "quota.check",
            "manifest.resolve",
            "story",
            "queue.wait",
            "shard.solve",
            "result.emit",
        } <= names

    def test_trace_op_unknown_job_and_disabled_daemon(self, tmp_path):
        async def run():
            async with running_daemon(tmp_path) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    missing = await client.trace("ghost")
                    await collect_submission(
                        client, manifest_payload(inline_story("a")), job_id="plain"
                    )
                    untraced = await client.trace("plain")
                    return missing, untraced

        missing, untraced = asyncio.run(run())
        assert missing["event"] == "error"
        assert "unknown job" in missing["error"]
        # Without --trace the op still answers, with an empty span list.
        assert untraced["event"] == "trace"
        assert untraced["trace"] is None and untraced["spans"] == []

    def test_trace_dir_exports_replayable_span_file(self, tmp_path):
        from repro.service.tracing import (
            SPANS_FILENAME,
            load_span_file,
            trace_for_job,
            validate_trace,
        )

        trace_dir = tmp_path / "traces"

        async def run():
            async with running_daemon(tmp_path, trace_dir=str(trace_dir)) as (
                socket_path,
                _,
            ):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    await collect_submission(
                        client, manifest_payload(inline_story("a")), job_id="filed"
                    )

        asyncio.run(run())
        records = load_span_file(trace_dir / SPANS_FILENAME)
        trace_id = trace_for_job(records, "filed")
        assert trace_id is not None
        assert validate_trace(records, trace_id) == []

    def test_uptime_gauge_in_stats_and_prometheus(self, tmp_path):
        async def run():
            async with running_daemon(tmp_path) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    stats = await client.stats()
                    text = await client.metrics_text()
                    return stats, text

        stats, text = asyncio.run(run())
        assert stats["metrics"]["daemon.uptime_seconds"] > 0.0
        uptime_lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_daemon_uptime_seconds ")
        ]
        assert len(uptime_lines) == 1
        assert float(uptime_lines[0].split()[-1]) > 0.0

    def test_journal_replay_preserves_trace_ids(self, tmp_path, monkeypatch):
        # An interrupted job's trace id must survive the journal round-trip
        # so operators can still `repro trace` it against the span file.
        from repro.service.journal import replay_records

        journal_dir = tmp_path / "journal"

        async def run():
            async with running_daemon(
                tmp_path, trace=True, journal_dir=str(journal_dir)
            ) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    await collect_submission(
                        client, manifest_payload(inline_story("a")), job_id="kept"
                    )
                    payload = await client.trace("kept")
                    return payload["trace"]

        trace_id = asyncio.run(run())
        journal_file = next(journal_dir.glob("*.jsonl"))
        with open(journal_file, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        submits = [r for r in records if r.get("type") == "submit"]
        assert submits and submits[0]["trace"] == trace_id
        # replay_records carries the id through to the replayed job.
        replayed = replay_records(records)
        assert replayed["kept"].trace_id == trace_id
