"""Job-lifecycle hardening tests: timeouts, retry/requeue, drain, telemetry.

These cover the daemon-era service guarantees:

* a job past its wall-clock deadline completes as ``TIMED_OUT`` immediately
  -- whether queued or mid-solve -- without stalling other jobs;
* a shard-wide solve failure is retried with the shard split in half, so a
  poisoned story is bisected away from its shard-mates and fails alone;
* ``close(drain=True)`` settles everything, ``close(drain=False)`` aborts
  queued work; submissions after shutdown fail fast instead of hanging;
* cancellation races (mid-solve, between dispatch and solve) keep the
  backpressure accounting exact.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.cascade.density import DensitySurface
from repro.core.dl_model import DiffusiveLogisticModel
from repro.core.initial_density import InitialDensity
from repro.core.parameters import PAPER_S1_HOP_PARAMETERS
from repro.service import (
    JobStatus,
    JobTimeoutError,
    MetricsRegistry,
    PredictionService,
    ShardAutotuner,
)

TRAINING_TIMES = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
EVALUATION_TIMES = TRAINING_TIMES[1:]


def synthetic_surface(seed):
    rng = np.random.default_rng(seed)
    phi = InitialDensity([1, 2, 3, 4, 5], list(2.0 + 3.0 * rng.random(5)))
    model = DiffusiveLogisticModel(
        PAPER_S1_HOP_PARAMETERS, points_per_unit=12, max_step=0.02
    )
    surface = model.predict(phi, [float(t) for t in range(1, 9)])
    return DensitySurface(
        distances=surface.distances,
        times=surface.times,
        values=surface.values,
        group_sizes=np.ones(surface.distances.size),
    )


@pytest.fixture(scope="module")
def surfaces():
    return {f"story{i}": synthetic_surface(i) for i in range(6)}


def slow_solver(delay: float):
    """A _solve_shard wrapper that sleeps before delegating (as a solve would)."""
    original = PredictionService._solve_shard

    def solve(self, jobs):
        time.sleep(delay)
        return original(self, jobs)

    return solve


class TestTimeouts:
    def test_queued_job_times_out_without_stalling_others(self, surfaces, monkeypatch):
        # One slow worker: the second job's deadline fires while it is still
        # queued behind the first.  It must complete as TIMED_OUT right then;
        # the first job must be untouched.
        monkeypatch.setattr(PredictionService, "_solve_shard", slow_solver(0.4))

        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS, max_workers=1, max_shard_size=1
            ) as service:
                first = await service.submit(
                    "story0", surfaces["story0"], TRAINING_TIMES, EVALUATION_TIMES
                )
                doomed = await service.submit(
                    "story1",
                    surfaces["story1"],
                    TRAINING_TIMES,
                    EVALUATION_TIMES,
                    timeout=0.15,
                )
                waited = time.perf_counter()
                with pytest.raises(JobTimeoutError, match="0.15s deadline"):
                    await doomed.wait()
                waited = time.perf_counter() - waited
                await first.wait()
                return doomed.status, first.status, waited, service.stats()

        doomed_status, first_status, waited, stats = asyncio.run(run())
        assert doomed_status is JobStatus.TIMED_OUT
        assert first_status is JobStatus.SUCCEEDED
        # The waiter unblocked at the deadline, not after the slow shard.
        assert waited < 0.4
        assert stats["timed_out"] == 1 and stats["succeeded"] == 1

    def test_mid_solve_timeout_discards_late_result(self, surfaces, monkeypatch):
        monkeypatch.setattr(PredictionService, "_solve_shard", slow_solver(0.4))

        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS, max_workers=1
            ) as service:
                job = await service.submit(
                    "story0",
                    surfaces["story0"],
                    TRAINING_TIMES,
                    EVALUATION_TIMES,
                    timeout=0.15,
                )
                await asyncio.sleep(0.05)  # let the shard start solving
                assert job.status is JobStatus.RUNNING
                with pytest.raises(JobTimeoutError):
                    await job.wait()
                assert job.status is JobStatus.TIMED_OUT
                # Drain: the late solve finishes but must not resurrect the job.
                await service.drain()
                return job.status, job.result, service.metrics.snapshot()

        status, result, metrics = asyncio.run(run())
        assert status is JobStatus.TIMED_OUT
        assert result is None
        assert metrics["service.late_results_discarded"] == 1

    def test_service_default_timeout_applies(self, surfaces, monkeypatch):
        monkeypatch.setattr(PredictionService, "_solve_shard", slow_solver(0.4))

        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS, job_timeout=0.1
            ) as service:
                job = await service.submit(
                    "story0", surfaces["story0"], TRAINING_TIMES, EVALUATION_TIMES
                )
                assert job.timeout == 0.1
                with pytest.raises(JobTimeoutError):
                    await job.wait()

        asyncio.run(run())

    def test_completed_job_is_not_expired_later(self, surfaces):
        # A generous deadline on a fast job: the timer is cancelled on
        # completion and must never flip a SUCCEEDED job to TIMED_OUT.
        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS
            ) as service:
                job = await service.submit(
                    "story0",
                    surfaces["story0"],
                    TRAINING_TIMES,
                    EVALUATION_TIMES,
                    timeout=30.0,
                )
                await job.wait()
                assert job._deadline_handle is None
                return job.status

        assert asyncio.run(run()) is JobStatus.SUCCEEDED

    def test_invalid_timeouts_rejected(self, surfaces):
        with pytest.raises(ValueError, match="job_timeout"):
            PredictionService(job_timeout=0.0)

        async def run():
            async with PredictionService() as service:
                with pytest.raises(ValueError, match="timeout must be > 0"):
                    await service.submit(
                        "a", surfaces["story0"], TRAINING_TIMES, EVALUATION_TIMES,
                        timeout=-1.0,
                    )

        asyncio.run(run())


class TestShardRetry:
    @staticmethod
    def poisoned_solver(poison_name: str):
        original = PredictionService._solve_shard

        def solve(self, jobs):
            if any(job.name == poison_name for job in jobs):
                raise RuntimeError("poisoned shard")
            return original(self, jobs)

        return solve

    def test_poisoned_story_is_bisected_away_from_shardmates(
        self, surfaces, monkeypatch
    ):
        # Four stories share one shard; the whole-shard solve raises whenever
        # the poisoned story is aboard.  Bisection must deliver every mate
        # and fail only the poison, once its retry budget is spent.
        monkeypatch.setattr(
            PredictionService, "_solve_shard", self.poisoned_solver("poison")
        )

        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS,
                max_shard_size=8,
                max_shard_retries=4,
            ) as service:
                mates = [
                    await service.submit(
                        name, surfaces[name], TRAINING_TIMES, EVALUATION_TIMES
                    )
                    for name in ("story0", "story1", "story2")
                ]
                poison = await service.submit(
                    "poison", surfaces["story3"], TRAINING_TIMES, EVALUATION_TIMES
                )
                assert poison.key == mates[0].key  # genuinely one shard
                results = [await job.wait() for job in mates]
                with pytest.raises(RuntimeError, match="poisoned shard"):
                    await poison.wait()
                return results, mates, poison, service.stats()

        results, mates, poison, stats = asyncio.run(run())
        assert all(job.status is JobStatus.SUCCEEDED for job in mates)
        assert all(result.overall_accuracy >= 0.0 for result in results)
        assert poison.status is JobStatus.FAILED
        assert poison.attempts == 4  # budget exhausted
        assert stats["succeeded"] == 3 and stats["failed"] == 1
        assert stats["shards_retried"] >= 2  # initial split + singleton retries

    def test_zero_retries_fails_whole_shard(self, surfaces, monkeypatch):
        monkeypatch.setattr(
            PredictionService, "_solve_shard", self.poisoned_solver("poison")
        )

        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS,
                max_shard_size=8,
                max_shard_retries=0,
            ) as service:
                mate = await service.submit(
                    "story0", surfaces["story0"], TRAINING_TIMES, EVALUATION_TIMES
                )
                poison = await service.submit(
                    "poison", surfaces["story1"], TRAINING_TIMES, EVALUATION_TIMES
                )
                for job in (mate, poison):
                    with pytest.raises(RuntimeError, match="poisoned shard"):
                        await job.wait()
                return mate.status, poison.status, service.stats()

        mate_status, poison_status, stats = asyncio.run(run())
        assert mate_status is JobStatus.FAILED and poison_status is JobStatus.FAILED
        assert stats["shards_retried"] == 0

    def test_transient_failure_recovers_on_retry(self, surfaces, monkeypatch):
        # The first solve attempt fails shard-wide, every later one works:
        # all jobs must succeed after one requeue round.
        original = PredictionService._solve_shard
        calls = {"n": 0}

        def flaky(self, jobs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient backend hiccup")
            return original(self, jobs)

        monkeypatch.setattr(PredictionService, "_solve_shard", flaky)

        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS, max_shard_size=8
            ) as service:
                jobs = [
                    await service.submit(
                        name, surfaces[name], TRAINING_TIMES, EVALUATION_TIMES
                    )
                    for name in ("story0", "story1")
                ]
                results = [await job.wait() for job in jobs]
                return jobs, results, service.stats()

        jobs, results, stats = asyncio.run(run())
        assert all(job.status is JobStatus.SUCCEEDED for job in jobs)
        assert all(job.attempts == 1 for job in jobs)
        assert stats["succeeded"] == 2 and stats["failed"] == 0
        assert stats["shards_retried"] == 1


class TestDrainAndShutdown:
    def test_drain_settles_everything_without_closing(self, surfaces):
        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS, max_shard_size=2
            ) as service:
                jobs = [
                    await service.submit(
                        name, surface, TRAINING_TIMES, EVALUATION_TIMES
                    )
                    for name, surface in surfaces.items()
                ]
                await service.drain()
                assert all(job.done for job in jobs)
                # Still open: a post-drain submission must be accepted.
                late = await service.submit(
                    "late", surfaces["story0"], TRAINING_TIMES, EVALUATION_TIMES
                )
                await late.wait()
                return late.status

        assert asyncio.run(run()) is JobStatus.SUCCEEDED

    def test_abort_close_cancels_queued_jobs(self, surfaces, monkeypatch):
        monkeypatch.setattr(PredictionService, "_solve_shard", slow_solver(0.3))

        async def run():
            service = PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS, max_workers=1, max_shard_size=1
            )
            service.start()
            running = await service.submit(
                "story0", surfaces["story0"], TRAINING_TIMES, EVALUATION_TIMES
            )
            queued = await service.submit(
                "story1", surfaces["story1"], TRAINING_TIMES, EVALUATION_TIMES
            )
            await asyncio.sleep(0.05)  # story0 starts solving, story1 queued
            await service.close(drain=False)
            return running.status, queued.status, service.stats()

        running_status, queued_status, stats = asyncio.run(run())
        # The in-flight shard finishes; the queued one is aborted.
        assert running_status is JobStatus.SUCCEEDED
        assert queued_status is JobStatus.CANCELLED
        assert stats["cancelled"] == 1 and stats["succeeded"] == 1

    def test_submit_after_shutdown_raises_cleanly(self, surfaces):
        # Satellite: submit-after-shutdown must raise a clean error
        # immediately -- not hang on the backpressure semaphore.
        async def run():
            service = PredictionService(parameters=PAPER_S1_HOP_PARAMETERS)
            service.start()
            await service.close()
            start = time.perf_counter()
            with pytest.raises(RuntimeError, match="closed"):
                await service.submit(
                    "a", surfaces["story0"], TRAINING_TIMES, EVALUATION_TIMES
                )
            return time.perf_counter() - start

        assert asyncio.run(run()) < 1.0

    def test_cancelling_mid_solve_job_returns_false_and_result_survives(
        self, surfaces, monkeypatch
    ):
        # Satellite: cancelling a job whose shard is mid-solve must be a
        # no-op (returns False), and the job must still deliver its result.
        monkeypatch.setattr(PredictionService, "_solve_shard", slow_solver(0.3))

        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS, max_workers=1
            ) as service:
                job = await service.submit(
                    "story0", surfaces["story0"], TRAINING_TIMES, EVALUATION_TIMES
                )
                await asyncio.sleep(0.05)
                assert job.status is JobStatus.RUNNING
                assert job.cancel() is False
                result = await job.wait()
                return job.status, result

        status, result = asyncio.run(run())
        assert status is JobStatus.SUCCEEDED
        assert result.overall_accuracy >= 0.0


class TestTelemetryWiring:
    def test_counters_and_histograms_track_a_run(self, surfaces):
        registry = MetricsRegistry()

        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS, max_shard_size=2, metrics=registry
            ) as service:
                jobs = [
                    await service.submit(
                        name, surface, TRAINING_TIMES, EVALUATION_TIMES
                    )
                    for name, surface in surfaces.items()
                ]
                for job in jobs:
                    await job.wait()

        asyncio.run(run())
        snapshot = registry.snapshot()
        assert snapshot["service.jobs_submitted"] == len(surfaces)
        assert snapshot["service.jobs_succeeded"] == len(surfaces)
        assert snapshot["service.stories_solved"] == len(surfaces)
        assert snapshot["service.shards_solved"] >= 3  # 6 stories, shards of <= 2
        assert snapshot["service.shard_solve_seconds"]["count"] >= 3
        assert snapshot["service.story_solve_seconds"]["sum"] > 0.0
        assert snapshot["service.queue_depth"] == 0.0  # everything settled


class TestAutotunedService:
    def test_autotuner_observes_and_resizes(self, surfaces):
        # A tiny latency target with a generous prior: after the first few
        # observations of real (fast) solves the recommendation must move
        # away from the prior, and every result must still be correct.
        autotuner = ShardAutotuner(
            target_shard_seconds=10.0, initial_story_seconds=10.0, max_size=4
        )

        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS, autotuner=autotuner
            ) as service:
                assert service.autotuner is autotuner
                results = await service.score_corpus(
                    surfaces, TRAINING_TIMES, EVALUATION_TIMES
                )
                return results, service.stats()

        results, stats = asyncio.run(run())
        assert set(results) == set(surfaces)
        assert autotuner.observations >= 2  # prior size 1 forces several shards
        assert autotuner.ewma_story_seconds < 10.0  # moved toward reality
        assert autotuner.recommended_size() == 4  # fast solves -> max size
        assert stats["autotuner"]["observations"] == autotuner.observations

    def test_autotune_flag_builds_capped_autotuner(self):
        service = PredictionService(autotune=True, max_shard_size=16)
        assert service.autotuner is not None
        assert service.autotuner.snapshot()["max_size"] == 16
        assert PredictionService().autotuner is None
