"""Tracing and observability tests: spans, propagation, logs, uptime.

The load-bearing guarantees:

* the :class:`Tracer` ring buffer, retroactive spans and JSONL export
  behave as documented, and the no-op tracer is free of side effects;
* a :class:`TraceContext` survives the process-executor pickle boundary:
  spans recorded inside a worker process re-parent under the service's
  shard span, giving one well-formed tree per story;
* after a bisection retry, the retried half-shards' ``shard.solve`` spans
  link to the original (failed) shard span -- parent id and ``retry_of``;
* the daemon's ``trace`` protocol op returns the job's spans, its stats
  include the ``daemon.uptime_seconds`` gauge, and the ``repro.service``
  logger emits one JSON record per job state change.
"""

import asyncio
import io
import json
import logging

import numpy as np
import pytest

from repro.cascade.density import DensitySurface
from repro.core.dl_model import DiffusiveLogisticModel
from repro.core.initial_density import InitialDensity
from repro.core.parameters import PAPER_S1_HOP_PARAMETERS
from repro.service import (
    JobStatus,
    PredictionService,
    configure_service_logging,
    log_job_event,
)
from repro.service.logs import SERVICE_LOGGER_NAME, JsonLineFormatter
from repro.service.tracing import (
    NOOP_TRACER,
    NULL_SPAN,
    SPANS_FILENAME,
    TraceContext,
    Tracer,
    chrome_trace,
    critical_path,
    load_span_file,
    phase_totals,
    render_trace,
    span_tree,
    speedscope_profile,
    trace_for_job,
    validate_trace,
)

TRAINING_TIMES = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
EVALUATION_TIMES = TRAINING_TIMES[1:]


def synthetic_surface(seed):
    rng = np.random.default_rng(seed)
    phi = InitialDensity([1, 2, 3, 4, 5], list(2.0 + 3.0 * rng.random(5)))
    model = DiffusiveLogisticModel(
        PAPER_S1_HOP_PARAMETERS, points_per_unit=12, max_step=0.02
    )
    surface = model.predict(phi, [float(t) for t in range(1, 9)])
    return DensitySurface(
        distances=surface.distances,
        times=surface.times,
        values=surface.values,
        group_sizes=np.ones(surface.distances.size),
    )


@pytest.fixture(scope="module")
def surfaces():
    return {f"story{i}": synthetic_surface(i) for i in range(4)}


class TestTracerCore:
    def test_span_lifecycle_and_parenting(self):
        tracer = Tracer()
        with tracer.span("parent", attributes={"k": 1}) as parent:
            child = tracer.span("child", parent=parent)
            child.finish()
        records = tracer.spans()
        assert [r["name"] for r in records] == ["child", "parent"]
        child_rec, parent_rec = records
        assert child_rec["parent_id"] == parent_rec["span_id"]
        assert child_rec["trace_id"] == parent_rec["trace_id"]
        assert parent_rec["attributes"] == {"k": 1}
        assert parent_rec["duration"] >= child_rec["duration"] >= 0.0

    def test_record_span_is_retroactive(self):
        tracer = Tracer()
        root = tracer.span("root")
        ctx = tracer.record_span(
            "earlier", parent=root, start=123.0, duration=0.5
        )
        root.finish()
        assert isinstance(ctx, TraceContext)
        by_name = {r["name"]: r for r in tracer.spans()}
        assert by_name["earlier"]["start"] == 123.0
        assert by_name["earlier"]["duration"] == 0.5
        assert by_name["earlier"]["parent_id"] == root.span_id

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            tracer.span(f"s{index}").finish()
        assert [r["name"] for r in tracer.spans()] == ["s2", "s3", "s4"]

    def test_export_round_trips_through_load_span_file(self, tmp_path):
        tracer = Tracer(export_dir=tmp_path)
        with tracer.span("a"):
            pass
        tracer.span("b").finish()
        tracer.close()
        path = tmp_path / SPANS_FILENAME
        # A torn final line (daemon killed mid-write) must be tolerated.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"name": "torn"')
        records = load_span_file(path)
        assert [r["name"] for r in records] == ["a", "b"]

    def test_span_error_attribute_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (record,) = tracer.spans()
        assert record["attributes"]["error"] == "ValueError"

    def test_noop_tracer_is_inert(self):
        assert NOOP_TRACER.enabled is False
        span = NOOP_TRACER.span("anything", attributes={"k": 1})
        assert span is NULL_SPAN
        span.set_attribute("x", 2)
        span.finish()
        assert NOOP_TRACER.spans() == []
        parent = TraceContext(trace_id="t", span_id="s")
        assert NOOP_TRACER.record_span(
            "r", parent=parent, start=0.0, duration=0.0
        ) == parent
        NOOP_TRACER.close()

    def test_trace_context_wire_round_trip(self):
        ctx = TraceContext(trace_id="t1", span_id="s1")
        assert TraceContext.from_wire(ctx.to_wire()) == ctx
        assert TraceContext.from_wire({"trace_id": 7}) is None
        assert TraceContext.from_wire("nope") is None

    def test_validate_trace_flags_malformed_trees(self):
        tracer = Tracer()
        a = tracer.span("a")
        a.finish()
        b = tracer.span("b")  # second root, same trace
        b.trace_id = a.trace_id
        b.finish()
        records = tracer.spans()
        problems = validate_trace(records, a.trace_id)
        assert any("1 root" in p or "root" in p for p in problems)
        orphan = [
            {
                "name": "lost",
                "trace_id": "t",
                "span_id": "x",
                "parent_id": "missing",
                "start": 0.0,
                "duration": 0.1,
                "attributes": {},
            }
        ]
        assert any("orphan" in p for p in validate_trace(orphan, "t"))

    def test_tree_exports_and_critical_path(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            tracer.record_span(
                "left", parent=root, start=root.start, duration=0.01
            )
            tracer.record_span(
                "right",
                parent=root,
                start=root.start + 0.02,
                duration=0.03,
                attributes={"worker": "w1"},
            )
        records = tracer.spans()
        (tree_root,) = span_tree(records, root.trace_id)
        assert [c.name for c in tree_root.children] == ["left", "right"]
        path = critical_path(tree_root)
        assert [n.name for n in path] == ["root", "right"]
        text = render_trace(records, root.trace_id)
        assert "root" in text and "├─ left" in text and "└─ right" in text
        chrome = chrome_trace(records, root.trace_id)
        complete = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"root", "left", "right"}
        speedscope = speedscope_profile(records, root.trace_id)
        assert speedscope["profiles"][0]["events"]
        totals = phase_totals(records, root.trace_id)
        assert totals["right"] == pytest.approx(0.03)


class TestServicePropagation:
    def run_service(self, surfaces, tracer, **kwargs):
        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS,
                max_shard_size=8,
                tracer=tracer,
                **kwargs,
            ) as service:
                parent = tracer.span("job", attributes={"job": "j1"})
                jobs = [
                    await service.submit(
                        name,
                        surfaces[name],
                        TRAINING_TIMES,
                        EVALUATION_TIMES,
                        trace=parent.context,
                    )
                    for name in surfaces
                ]
                for job in jobs:
                    await job.wait()
                parent.finish()
                return jobs, parent, service.metrics.snapshot()

        return asyncio.run(run())

    def test_thread_executor_builds_single_rooted_trees(self, surfaces):
        tracer = Tracer()
        jobs, parent, metrics = self.run_service(surfaces, tracer)
        records = tracer.spans(parent.trace_id)
        assert validate_trace(records, parent.trace_id) == []
        names = {r["name"] for r in records}
        assert {"job", "story", "queue.wait", "shard.solve", "solve.fit"} <= names
        (root,) = span_tree(records, parent.trace_id)
        assert root.name == "job"
        stories = [c for c in root.children if c.name == "story"]
        assert len(stories) == len(surfaces)
        # Per-phase histograms flow through the registry even with tracing on.
        assert metrics["service.queue_wait_seconds"]["count"] == len(surfaces)
        assert metrics['service.solve_phase_seconds{phase="fit"}']["count"] >= 1
        assert metrics['service.solve_phase_seconds{phase="evaluate"}']["count"] >= 1

    def test_phase_histograms_populate_without_tracing(self, surfaces):
        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS, max_shard_size=8
            ) as service:
                job = await service.submit(
                    "story0", surfaces["story0"], TRAINING_TIMES, EVALUATION_TIMES
                )
                await job.wait()
                return service.metrics.snapshot()

        metrics = asyncio.run(run())
        assert metrics["service.queue_wait_seconds"]["count"] == 1
        assert metrics['service.solve_phase_seconds{phase="fit"}']["count"] == 1

    def test_trace_context_survives_process_pickle_boundary(self, surfaces):
        # Spans recorded inside worker processes come back through the
        # picklable ShardSolveReport and re-parent under the service-side
        # shard span: one tree, no orphans, worker attribution intact.
        tracer = Tracer()
        jobs, parent, _ = self.run_service(
            surfaces, tracer, executor="process", max_workers=2
        )
        assert all(job.status is JobStatus.SUCCEEDED for job in jobs)
        records = tracer.spans(parent.trace_id)
        assert validate_trace(records, parent.trace_id) == []
        worker_spans = [r for r in records if r["name"] == "solve.fit"]
        assert worker_spans, "no worker-side spans came back over the boundary"
        by_id = {r["span_id"]: r for r in records}
        for record in worker_spans:
            assert record["trace_id"] == parent.trace_id
            shard = by_id[record["parent_id"]]
            assert shard["name"] == "shard.solve"
            assert record["attributes"]["worker"].startswith(
                shard["attributes"]["worker"]
            )


class TestBisectionRetryLinkage:
    def test_retried_half_shards_link_to_original_shard_span(
        self, surfaces, monkeypatch
    ):
        # The first shard-wide attempt fails; the bisected halves must
        # carry retry_of and parent themselves under the failed shard's
        # span instead of starting fresh trees.
        original = PredictionService._solve_shard
        calls = {"n": 0}

        def flaky(self, jobs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient backend hiccup")
            return original(self, jobs)

        monkeypatch.setattr(PredictionService, "_solve_shard", flaky)
        tracer = Tracer()

        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS,
                max_shard_size=8,
                tracer=tracer,
            ) as service:
                jobs = [
                    await service.submit(
                        name, surfaces[name], TRAINING_TIMES, EVALUATION_TIMES
                    )
                    for name in ("story0", "story1")
                ]
                for job in jobs:
                    await job.wait()
                return jobs

        jobs = asyncio.run(run())
        assert all(job.status is JobStatus.SUCCEEDED for job in jobs)
        shard_spans = [r for r in tracer.spans() if r["name"] == "shard.solve"]
        failed = [r for r in shard_spans if "error" in r["attributes"]]
        retries = [r for r in shard_spans if "retry_of" in r["attributes"]]
        assert len(failed) == 1
        assert failed[0]["attributes"]["error"] == "RuntimeError"
        assert len(retries) == 2  # the shard was bisected into two halves
        for record in retries:
            assert record["attributes"]["retry_of"] == failed[0]["span_id"]
            assert record["parent_id"] == failed[0]["span_id"]
            assert record["trace_id"] == failed[0]["trace_id"]
            assert record["attributes"]["attempt"] == 1


class TestStructuredLogging:
    def make_logger(self, level=logging.DEBUG):
        stream = io.StringIO()
        logger = logging.getLogger(f"{SERVICE_LOGGER_NAME}.test")
        logger.handlers.clear()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(JsonLineFormatter())
        logger.addHandler(handler)
        logger.setLevel(level)
        logger.propagate = False
        return logger, stream

    def test_log_job_event_emits_one_json_record(self):
        logger, stream = self.make_logger()
        log_job_event(
            logger, "job.accepted", job_id="j1", trace_id="t1", stories=3
        )
        record = json.loads(stream.getvalue())
        assert record["event"] == "job.accepted"
        assert record["job_id"] == "j1"
        assert record["trace_id"] == "t1"
        assert record["stories"] == 3
        assert record["level"] == "info"
        assert record["logger"].startswith(SERVICE_LOGGER_NAME)
        assert record["ts"].endswith("Z")

    def test_level_gating_suppresses_debug_records(self):
        logger, stream = self.make_logger(level=logging.INFO)
        log_job_event(
            logger, "story.result", job_id="j1", level=logging.DEBUG, story="s"
        )
        assert stream.getvalue() == ""

    def test_configure_service_logging_is_idempotent(self):
        stream = io.StringIO()
        logger = configure_service_logging("warning", stream=stream)
        again = configure_service_logging("debug", stream=stream)
        assert logger is again
        handlers = [
            h
            for h in logger.handlers
            if getattr(h, "stream", None) is stream
        ]
        assert len(handlers) == 1
        assert logger.level == logging.DEBUG
        logger.handlers.remove(handlers[0])

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="log level"):
            configure_service_logging("chatty")


def test_trace_for_job_finds_the_root_span():
    tracer = Tracer()
    span = tracer.span("job", attributes={"job": "job-7"})
    span.finish()
    tracer.span("job", attributes={"job": "other"}).finish()
    records = tracer.spans()
    assert trace_for_job(records, "job-7") == span.trace_id
    assert trace_for_job(records, "missing") is None
