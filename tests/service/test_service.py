"""Tests for the async multi-story prediction service.

The load-bearing property mirrors the batch-predictor tests: the service may
reorganise *when* each shard is solved (async workers, micro-batches), but
the per-story results must be numerically identical to the synchronous
:class:`BatchPredictor` path.
"""

import asyncio

import numpy as np
import pytest

from repro.cascade.density import DensitySurface
from repro.core.dl_model import DiffusiveLogisticModel
from repro.core.initial_density import InitialDensity
from repro.core.parameters import (
    DLParameters,
    ExponentialDecayGrowthRate,
    PAPER_S1_HOP_PARAMETERS,
)
from repro.core.prediction import BatchPredictor
from repro.service import (
    JobCancelledError,
    JobStatus,
    PredictionService,
    score_corpus_sync,
)

TRAINING_TIMES = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
EVALUATION_TIMES = TRAINING_TIMES[1:]


def synthetic_surface(seed_densities, hours=8, diffusion=0.01):
    phi = InitialDensity([1, 2, 3, 4, 5], seed_densities)
    parameters = DLParameters(
        diffusion_rate=diffusion,
        growth_rate=ExponentialDecayGrowthRate(1.4, 1.5, 0.25),
        carrying_capacity=25.0,
    )
    model = DiffusiveLogisticModel(parameters, points_per_unit=12, max_step=0.02)
    surface = model.predict(phi, [float(t) for t in range(1, hours + 1)])
    return DensitySurface(
        distances=surface.distances,
        times=surface.times,
        values=surface.values,
        group_sizes=np.ones(surface.distances.size),
    )


@pytest.fixture(scope="module")
def corpus_surfaces():
    rng = np.random.default_rng(7)
    return {
        f"story{i}": synthetic_surface(list(2.0 + 3.0 * rng.random(5)))
        for i in range(8)
    }


class TestEquivalenceWithBatchPredictor:
    def test_results_identical_to_synchronous_path(self, corpus_surfaces):
        service_results = score_corpus_sync(
            corpus_surfaces,
            training_times=TRAINING_TIMES,
            evaluation_times=EVALUATION_TIMES,
            parameters=PAPER_S1_HOP_PARAMETERS,
            max_shard_size=3,  # force several shards -- must not change results
            max_workers=3,
        )
        reference = BatchPredictor(parameters=PAPER_S1_HOP_PARAMETERS).fit(
            corpus_surfaces, training_times=TRAINING_TIMES
        )
        expected = reference.evaluate(corpus_surfaces, times=EVALUATION_TIMES)
        assert set(service_results) == set(corpus_surfaces)
        for name in corpus_surfaces:
            got = service_results[name]
            want = expected[name]
            assert np.array_equal(got.predicted.values, want.predicted.values)
            assert got.overall_accuracy == want.overall_accuracy

    def test_calibrated_results_identical_to_synchronous_path(self, corpus_surfaces):
        two = {name: corpus_surfaces[name] for name in ("story0", "story1")}
        service_results = score_corpus_sync(
            two, training_times=TRAINING_TIMES, evaluation_times=EVALUATION_TIMES
        )
        reference = BatchPredictor().fit(two, training_times=TRAINING_TIMES)
        expected = reference.evaluate(two, times=EVALUATION_TIMES)
        for name in two:
            assert (
                service_results[name].parameters == expected[name].parameters
            )
            assert np.array_equal(
                service_results[name].predicted.values,
                expected[name].predicted.values,
            )


class TestJobLifecycle:
    def test_submit_await_and_stream(self, corpus_surfaces):
        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS, max_shard_size=2
            ) as service:
                jobs = [
                    await service.submit(
                        name, surface, TRAINING_TIMES, EVALUATION_TIMES
                    )
                    for name, surface in corpus_surfaces.items()
                ]
                assert all(job.status in (JobStatus.PENDING, JobStatus.RUNNING, JobStatus.SUCCEEDED) for job in jobs)
                streamed = []
                async for job in service.stream(jobs):
                    streamed.append(job)
                assert len(streamed) == len(jobs)
                assert all(job.done for job in streamed)
                assert all(job.status is JobStatus.SUCCEEDED for job in streamed)
                for job in jobs:
                    result = await job.wait()
                    assert 0.0 <= result.overall_accuracy <= 1.0
                return service.stats()

        stats = asyncio.run(run())
        assert stats["succeeded"] == len(corpus_surfaces)
        assert stats["failed"] == 0
        # max_shard_size=2 over 8 same-signature stories -> at least 4 shards.
        assert stats["shards_solved"] >= 4
        assert stats["stories_solved"] == len(corpus_surfaces)

    def test_failed_story_reports_error_without_poisoning_others(self, corpus_surfaces):
        bad = DensitySurface(
            np.asarray([1.0, 2.0, 3.0]),
            np.asarray([1.0, 2.0]),
            np.zeros((2, 3)),  # empty first hour: phi is all zero -> calibration fails
            np.ones(3),
        )

        async def run():
            async with PredictionService(max_shard_size=4) as service:
                good_job = await service.submit(
                    "good", corpus_surfaces["story0"], TRAINING_TIMES, EVALUATION_TIMES
                )
                bad_job = await service.submit("bad", bad, [1.0, 2.0], [2.0])
                result = await good_job.wait()
                assert result.overall_accuracy >= 0.0
                with pytest.raises(Exception):
                    await bad_job.wait()
                return good_job.status, bad_job.status

        good_status, bad_status = asyncio.run(run())
        assert good_status is JobStatus.SUCCEEDED
        assert bad_status is JobStatus.FAILED

    def test_failed_story_does_not_poison_its_own_shard(self, corpus_surfaces):
        # The bad story shares the good stories' shard signature (same
        # interval, initial time, windows) but its surface lacks the later
        # training hours, so its *fit* fails -- the shard-mates must still
        # succeed.
        bad = DensitySurface(
            np.asarray([1.0, 2.0, 3.0, 4.0, 5.0]),
            np.asarray([1.0, 2.0]),
            np.asarray([[5.0, 2.0, 2.5, 1.5, 1.0], [6.0, 3.0, 3.2, 2.0, 1.4]]),
            np.ones(5),
        )

        async def run():
            async with PredictionService(max_shard_size=8) as service:
                jobs = [
                    await service.submit(
                        name, corpus_surfaces[name], TRAINING_TIMES, EVALUATION_TIMES
                    )
                    for name in ("story0", "story1")
                ]
                bad_job = await service.submit(
                    "bad", bad, TRAINING_TIMES, EVALUATION_TIMES
                )
                assert bad_job.key == jobs[0].key  # genuinely the same shard
                results = [await job.wait() for job in jobs]
                with pytest.raises(Exception):
                    await bad_job.wait()
                return results, [job.status for job in jobs], bad_job.status, service.stats()

        results, statuses, bad_status, stats = asyncio.run(run())
        assert all(status is JobStatus.SUCCEEDED for status in statuses)
        assert bad_status is JobStatus.FAILED
        assert all(result.overall_accuracy >= 0.0 for result in results)
        assert stats["succeeded"] == 2 and stats["failed"] == 1
        assert stats["stories_solved"] == 2

    def test_duplicate_in_flight_names_rejected(self, corpus_surfaces):
        # Shard solves key stories by name, so a live duplicate would
        # silently get another surface's result; the name becomes reusable
        # once its job finished.
        async def run():
            async with PredictionService(parameters=PAPER_S1_HOP_PARAMETERS) as service:
                first = await service.submit(
                    "dup", corpus_surfaces["story0"], TRAINING_TIMES, EVALUATION_TIMES
                )
                with pytest.raises(ValueError, match="already queued or running"):
                    await service.submit(
                        "dup", corpus_surfaces["story1"], TRAINING_TIMES, EVALUATION_TIMES
                    )
                await first.wait()
                reused = await service.submit(
                    "dup", corpus_surfaces["story1"], TRAINING_TIMES, EVALUATION_TIMES
                )
                await reused.wait()
                return first.status, reused.status

        first_status, reused_status = asyncio.run(run())
        assert first_status is JobStatus.SUCCEEDED
        assert reused_status is JobStatus.SUCCEEDED

    def test_duplicate_name_rejected_while_parked_on_full_queue(self, corpus_surfaces):
        # The name is reserved before the backpressure await, so a second
        # submit with the same name fails fast even while the first is still
        # suspended waiting for a queue slot.
        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS, queue_depth=1, max_workers=1
            ) as service:
                filler = await service.submit(
                    "filler", corpus_surfaces["story0"], TRAINING_TIMES, EVALUATION_TIMES
                )
                parked = asyncio.ensure_future(
                    service.submit(
                        "dup", corpus_surfaces["story1"], TRAINING_TIMES, EVALUATION_TIMES
                    )
                )
                await asyncio.sleep(0)  # let 'parked' reserve its name and suspend
                with pytest.raises(ValueError, match="already queued or running"):
                    await service.submit(
                        "dup", corpus_surfaces["story2"], TRAINING_TIMES, EVALUATION_TIMES
                    )
                await filler.wait()
                await (await parked).wait()

        asyncio.run(run())

    def test_submit_requires_running_service(self, corpus_surfaces):
        async def run():
            service = PredictionService()
            with pytest.raises(RuntimeError):
                await service.submit("a", corpus_surfaces["story0"])

        asyncio.run(run())


class TestCancellation:
    def test_pending_job_can_be_cancelled(self, corpus_surfaces):
        async def run():
            service = PredictionService(parameters=PAPER_S1_HOP_PARAMETERS)
            service.start()
            # Submit without yielding to the event loop: the dispatcher has
            # not run yet, so both jobs are still pending and cancellable.
            keep = await service.submit(
                "keep", corpus_surfaces["story0"], TRAINING_TIMES, EVALUATION_TIMES
            )
            drop = await service.submit(
                "drop", corpus_surfaces["story1"], TRAINING_TIMES, EVALUATION_TIMES
            )
            assert drop.cancel() is True
            assert drop.status is JobStatus.CANCELLED
            with pytest.raises(JobCancelledError):
                await drop.wait()
            result = await keep.wait()
            assert result.overall_accuracy >= 0.0
            stats = service.stats()
            await service.close()
            return stats

        stats = asyncio.run(run())
        assert stats["cancelled"] == 1
        assert stats["succeeded"] == 1
        assert stats["stories_solved"] == 1

    def test_cancel_between_dispatch_and_shard_start_keeps_slots_balanced(
        self, corpus_surfaces
    ):
        # A job cancelled after the dispatcher popped it but before the shard
        # task first ran must stay cancelled, must not be solved, and must not
        # release its queue slot twice (which would break the backpressure
        # bound).
        async def run():
            service = PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS, queue_depth=2
            )
            service.start()
            job = await service.submit(
                "drop", corpus_surfaces["story0"], TRAINING_TIMES, EVALUATION_TIMES
            )
            # Let the dispatcher pop the job and create the shard task, but
            # do not let that task run yet.
            await asyncio.sleep(0)
            assert job.status is JobStatus.PENDING
            assert job.cancel() is True
            with pytest.raises(JobCancelledError):
                await job.wait()
            await service.close()
            stats = service.stats()
            # The semaphore must sit exactly at queue_depth again: two more
            # submissions may pass without suspending, a third may not.
            assert service._slots._value == 2
            return job.status, stats

        status, stats = asyncio.run(run())
        assert status is JobStatus.CANCELLED
        assert stats["cancelled"] == 1
        assert stats["succeeded"] == 0
        assert stats["stories_solved"] == 0

    def test_finished_job_cannot_be_cancelled(self, corpus_surfaces):
        async def run():
            async with PredictionService(parameters=PAPER_S1_HOP_PARAMETERS) as service:
                job = await service.submit(
                    "a", corpus_surfaces["story0"], TRAINING_TIMES, EVALUATION_TIMES
                )
                await job.wait()
                assert job.cancel() is False
                assert job.status is JobStatus.SUCCEEDED

        asyncio.run(run())


class TestBackpressure:
    def test_submit_suspends_at_queue_depth(self, corpus_surfaces):
        """With queue_depth=2, submitting 6 stories must throttle the producer
        (it can only run ahead of the solver by the queue depth) yet still
        complete every job."""

        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS,
                queue_depth=2,
                max_shard_size=1,
                max_workers=1,
            ) as service:
                names = list(corpus_surfaces)[:6]
                in_queue_high_water = 0
                jobs = []
                for name in names:
                    job = await service.submit(
                        name, corpus_surfaces[name], TRAINING_TIMES, EVALUATION_TIMES
                    )
                    jobs.append(job)
                    stats = service.stats()
                    in_queue_high_water = max(
                        in_queue_high_water, stats["queued"] + stats["running"]
                    )
                results = [await job.wait() for job in jobs]
                return in_queue_high_water, results

        high_water, results = asyncio.run(run())
        assert high_water <= 2
        assert len(results) == 6

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            PredictionService(queue_depth=0)
        with pytest.raises(ValueError):
            PredictionService(max_workers=0)

    def test_submit_parked_during_close_is_rejected_not_stranded(
        self, corpus_surfaces
    ):
        # A submit parked on the backpressure semaphore while close() drains
        # must be rejected (the dispatcher is being torn down), not silently
        # enqueued as a forever-pending job.
        async def run():
            service = PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS, queue_depth=1, max_workers=1
            )
            service.start()
            filler = await service.submit(
                "filler", corpus_surfaces["story0"], TRAINING_TIMES, EVALUATION_TIMES
            )
            parked = asyncio.ensure_future(
                service.submit(
                    "parked", corpus_surfaces["story1"], TRAINING_TIMES, EVALUATION_TIMES
                )
            )
            await asyncio.sleep(0)  # let 'parked' suspend on the semaphore
            await service.close()
            with pytest.raises(RuntimeError, match="closed"):
                await parked
            assert filler.status is JobStatus.SUCCEEDED

        asyncio.run(run())


class TestServiceConfiguration:
    def test_operator_mode_flows_to_solutions(self, corpus_surfaces):
        one = {"story0": corpus_surfaces["story0"]}
        banded = score_corpus_sync(
            one,
            training_times=TRAINING_TIMES,
            evaluation_times=EVALUATION_TIMES,
            parameters=PAPER_S1_HOP_PARAMETERS,
            operator="banded",
        )
        thomas = score_corpus_sync(
            one,
            training_times=TRAINING_TIMES,
            evaluation_times=EVALUATION_TIMES,
            parameters=PAPER_S1_HOP_PARAMETERS,
            operator="thomas",
        )
        assert banded["story0"].solution.pde_solution.metadata["operator"] == "banded"
        assert thomas["story0"].solution.pde_solution.metadata["operator"] == "thomas"
        assert np.allclose(
            banded["story0"].predicted.values,
            thomas["story0"].predicted.values,
            atol=1e-10,
        )

    def test_heterogeneous_corpus_shards_by_signature(self):
        surfaces = {
            "wide": synthetic_surface([5.0, 2.0, 2.5, 1.5, 1.0]),
            "narrow": DensitySurface(
                np.asarray([1.0, 2.0, 3.0]),
                np.arange(1.0, 7.0),
                np.column_stack(
                    [np.linspace(4, 8, 6), np.linspace(2, 5, 6), np.linspace(1, 3, 6)]
                ),
                np.ones(3),
            ),
        }

        async def run():
            async with PredictionService(parameters=PAPER_S1_HOP_PARAMETERS) as service:
                results = await service.score_corpus(
                    surfaces, training_times=[1.0, 2.0, 3.0], evaluation_times=[2.0, 3.0]
                )
                return results, service.stats()

        results, stats = asyncio.run(run())
        assert stats["shards_solved"] == 2
        assert results["wide"].solution.grid.upper == 5.0
        assert results["narrow"].solution.grid.upper == 3.0
