"""Tests for the daemon job journal: replay, compaction, crash survival.

The end-to-end test SIGKILLs a real daemon subprocess mid-job and asserts
the restarted daemon (same ``--journal``) reports the doomed job as
``interrupted`` via ``status`` -- the acceptance criterion that no
acknowledged job ever silently vanishes.
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import DaemonClient, PredictionDaemon
from repro.service.journal import (
    JOURNAL_FILENAME,
    JobJournal,
    ReplayedJob,
    replay_records,
)

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def journal_lines(directory) -> "list[dict]":
    path = os.path.join(str(directory), JOURNAL_FILENAME)
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestJournalUnit:
    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            JobJournal(str(tmp_path), fsync="sometimes")
        JobJournal(str(tmp_path), fsync="never")  # valid

    def test_append_and_replay_round_trip(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        assert journal.replay() == {}
        journal.record_submit("j1", stories=["a", "b"], skipped=["z"], timeout=5.0)
        journal.record_story("j1", "a", "succeeded")
        journal.record_submit("j2", stories=["c"], skipped=[])
        journal.record_story("j2", "c", "succeeded")
        journal.record_job("j2", "completed")
        assert journal.records_written == 5
        journal.close()

        reopened = JobJournal(str(tmp_path))
        replayed = reopened.replay()
        reopened.close()
        # j2 completed and is gone; j1 was in flight and is interrupted.
        assert list(replayed) == ["j1"]
        job = replayed["j1"]
        assert isinstance(job, ReplayedJob) and not job.finished
        assert job.stories == ["a", "b"] and job.skipped == ["z"]
        # b never reached a terminal status: it reads as interrupted.
        assert job.story_counts() == {
            "succeeded": 1,
            "interrupted": 1,
            "skipped": 1,
        }

    def test_replay_compacts_to_summary_records(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.replay()
        journal.record_submit("gone", stories=["a"], skipped=[])
        journal.record_story("gone", "a", "succeeded")
        journal.record_job("gone")
        journal.record_submit("doomed", stories=["b", "c"], skipped=[])
        journal.record_story("doomed", "b", "failed")
        journal.close()

        reopened = JobJournal(str(tmp_path))
        assert list(reopened.replay()) == ["doomed"]
        reopened.close()
        lines = journal_lines(tmp_path)
        # Compaction rewrote the file: one summary record, completed gone.
        assert [record["type"] for record in lines] == ["interrupted"]
        assert lines[0]["job"] == "doomed"
        assert lines[0]["story_statuses"] == {"b": "failed"}

        # Interrupted jobs survive a *second* restart too.
        again = JobJournal(str(tmp_path))
        survivors = again.replay()
        again.close()
        assert list(survivors) == ["doomed"]
        assert survivors["doomed"].story_counts() == {
            "failed": 1,
            "interrupted": 1,
            "skipped": 0,
        }

    def test_torn_final_line_tolerated_mid_file_corruption_rejected(self, tmp_path):
        path = tmp_path / JOURNAL_FILENAME
        submit = json.dumps(
            {"type": "submit", "job": "j1", "t": 1.0, "stories": ["a"], "skipped": []}
        )
        path.write_text(submit + "\n" + '{"type": "story", "jo')  # torn tail
        journal = JobJournal(str(tmp_path))
        assert list(journal.replay()) == ["j1"]
        journal.close()

        path.write_text('{"torn mid-file\n' + submit + "\n")
        broken = JobJournal(str(tmp_path))
        with pytest.raises(ValueError, match="corrupt"):
            broken.replay()

    def test_replay_records_folds_in_submission_order(self):
        records = [
            {"type": "submit", "job": "b", "t": 2.0, "stories": ["x"], "skipped": []},
            {"type": "submit", "job": "a", "t": 1.0, "stories": ["y"], "skipped": []},
            {"type": "story", "job": "ghost", "story": "x", "status": "succeeded"},
            {"type": "job", "job": "ghost", "status": "completed"},
        ]
        replayed = replay_records(records)
        # Order preserved; records for never-submitted jobs are ignored.
        assert list(replayed) == ["b", "a"]

    def test_replay_must_precede_appends(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.record_submit("j1", stories=[], skipped=[])
        with pytest.raises(RuntimeError, match="replay"):
            journal.replay()
        journal.close()


class TestDaemonReplay:
    """The daemon registers journalled jobs as ``interrupted`` on start."""

    def _prewritten_journal(self, tmp_path) -> str:
        journal = JobJournal(str(tmp_path / "journal"))
        journal.replay()
        journal.record_submit("doomed", stories=["a", "b"], skipped=["s"])
        journal.record_story("doomed", "a", "succeeded")
        journal.close()
        return str(tmp_path / "journal")

    def test_interrupted_job_answers_status(self, tmp_path):
        journal_dir = self._prewritten_journal(tmp_path)
        socket_path = str(tmp_path / "d.sock")

        async def run():
            daemon = PredictionDaemon(max_workers=1, journal_dir=journal_dir)
            server = asyncio.ensure_future(daemon.serve_unix(socket_path))
            deadline = asyncio.get_running_loop().time() + 5.0
            try:
                while not os.path.exists(socket_path):
                    if server.done():
                        await server
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.005)
                async with await DaemonClient.connect_unix(socket_path) as client:
                    status = await client.status("doomed")
                    all_jobs = await client.status()
                    stats = await client.stats()
                    await client.shutdown()
                return status, all_jobs, stats
            finally:
                await asyncio.gather(server, return_exceptions=True)

        status, all_jobs, stats = asyncio.run(run())
        assert status["status"] == "interrupted"
        assert status["stories"] == {"succeeded": 1, "interrupted": 1, "skipped": 1}
        assert [job["id"] for job in all_jobs["jobs"]] == ["doomed"]
        assert stats["jobs"] == {
            "active": 0,
            "completed": 0,
            "interrupted": 1,
            "total": 1,
        }
        assert stats["journal"]["directory"] == journal_dir
        assert stats["metrics"].get("daemon.jobs_interrupted") == 1

    def test_stats_without_journal_has_no_interrupted_key(self, tmp_path):
        socket_path = str(tmp_path / "d.sock")

        async def run():
            daemon = PredictionDaemon(max_workers=1)
            server = asyncio.ensure_future(daemon.serve_unix(socket_path))
            deadline = asyncio.get_running_loop().time() + 5.0
            try:
                while not os.path.exists(socket_path):
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.005)
                async with await DaemonClient.connect_unix(socket_path) as client:
                    stats = await client.stats()
                    await client.shutdown()
                return stats
            finally:
                await asyncio.gather(server, return_exceptions=True)

        stats = asyncio.run(run())
        # Byte-compatible with the pre-journal payload.
        assert stats["jobs"] == {"active": 0, "completed": 0, "total": 0}
        assert "journal" not in stats

    def test_journal_fsync_validated_at_construction(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            PredictionDaemon(journal_dir=str(tmp_path), journal_fsync="maybe")


def _connect_retry(path: str, timeout: float = 30.0) -> socket.socket:
    deadline = time.time() + timeout
    while True:
        sock = socket.socket(socket.AF_UNIX)
        try:
            sock.connect(path)
            return sock
        except OSError:
            sock.close()
            if time.time() > deadline:
                raise
            time.sleep(0.05)


def _request_line(sock: socket.socket, payload: dict) -> dict:
    sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
    buffer = b""
    while b"\n" not in buffer:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("daemon hung up")
        buffer += chunk
    return json.loads(buffer.split(b"\n", 1)[0])


class TestSigkillSurvival:
    def test_sigkilled_daemon_reports_job_after_restart(self, tmp_path):
        """SIGKILL mid-job; the restart reports it instead of forgetting it."""
        journal_dir = str(tmp_path / "journal")
        socket_path = str(tmp_path / "d.sock")
        manifest = {
            "metric": "hops",
            "hours": 4,
            "stories": [
                {
                    "name": "s1",
                    "distances": [1, 2, 3, 4, 5],
                    "times": [1, 2, 3, 4],
                    "values": [
                        [5.0, 2.0, 2.5, 1.5, 1.0],
                        [7.0, 3.0, 3.5, 2.0, 1.4],
                        [9.0, 4.2, 4.6, 2.6, 1.9],
                        [11.0, 5.5, 5.8, 3.3, 2.5],
                    ],
                }
            ],
        }
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        command = [
            sys.executable, "-m", "repro", "daemon",
            "--listen", f"unix:{socket_path}", "--journal", journal_dir,
        ]
        first = subprocess.Popen(command, env=env, stderr=subprocess.DEVNULL)
        try:
            sock = _connect_retry(socket_path)
            accepted = _request_line(
                sock, {"op": "submit", "manifest": manifest, "id": "doomed"}
            )
            assert accepted["event"] == "accepted"
            # The accepted event was journalled durably *before* the ack, so
            # SIGKILL right now must not lose the job.
            first.send_signal(signal.SIGKILL)
            first.wait(timeout=30)
            sock.close()
        finally:
            if first.poll() is None:
                first.kill()
                first.wait(timeout=30)

        second = subprocess.Popen(command, env=env, stderr=subprocess.DEVNULL)
        try:
            # The restart also exercises stale-socket reclaim: the killed
            # process left its socket file behind.
            sock = _connect_retry(socket_path)
            status = _request_line(sock, {"op": "status", "id": "doomed"})
            assert status["status"] == "interrupted"
            assert status["stories"].get("interrupted", 0) >= 1
            _request_line(sock, {"op": "shutdown"})
            sock.close()
            second.wait(timeout=30)
            assert second.returncode == 0
        finally:
            if second.poll() is None:
                second.kill()
                second.wait(timeout=30)
