"""Tests for the serve-batch story-manifest format."""

import json

import numpy as np
import pytest

from repro.service import (
    ManifestError,
    load_manifest,
    parse_manifest,
    resolve_manifest,
)

INLINE_STORY = {
    "name": "cascade-1",
    "distances": [1, 2, 3],
    "times": [1, 2, 3],
    "values": [[5.0, 2.0, 1.0], [6.0, 3.0, 1.5], [7.0, 4.0, 2.0]],
}


class TestParsing:
    def test_string_entries_are_corpus_stories(self):
        manifest = parse_manifest({"corpus": {}, "stories": ["s1", "s2"]})
        assert [s.name for s in manifest.stories] == ["s1", "s2"]
        assert all(not s.is_inline for s in manifest.stories)
        assert manifest.needs_corpus

    def test_inline_story_carries_its_surface(self):
        manifest = parse_manifest({"stories": [INLINE_STORY]})
        (story,) = manifest.stories
        assert story.is_inline
        assert story.surface.values.shape == (3, 3)
        assert not manifest.needs_corpus

    def test_corpus_story_without_corpus_block_rejected(self):
        with pytest.raises(ManifestError):
            parse_manifest({"stories": ["s1"]})

    def test_duplicate_names_rejected(self):
        with pytest.raises(ManifestError):
            parse_manifest({"corpus": {}, "stories": ["s1", "s1"]})

    def test_bad_metric_rejected(self):
        with pytest.raises(ManifestError):
            parse_manifest({"metric": "euclidean", "stories": []})

    def test_short_hours_rejected(self):
        with pytest.raises(ManifestError):
            parse_manifest({"hours": 1, "stories": []})

    def test_inline_shape_mismatch_rejected(self):
        bad = dict(INLINE_STORY, values=[[1.0, 2.0]])
        with pytest.raises(ManifestError):
            parse_manifest({"stories": [bad]})

    def test_mixed_corpus_and_inline_entry_rejected(self):
        mixed = dict(INLINE_STORY, story="s1")
        with pytest.raises(ManifestError, match="mixes a corpus reference"):
            parse_manifest({"corpus": {}, "stories": [mixed]})

    def test_inline_missing_field_rejected(self):
        bad = {k: v for k, v in INLINE_STORY.items() if k != "values"}
        with pytest.raises(ManifestError):
            parse_manifest({"stories": [bad]})

    def test_non_numeric_fields_raise_manifest_error(self):
        with pytest.raises(ManifestError):
            parse_manifest({"hours": "six", "stories": []})
        with pytest.raises(ManifestError):
            parse_manifest({"stories": [dict(INLINE_STORY, distances=["a", "b", "c"])]})

    def test_unknown_corpus_keys_rejected(self):
        # A typo'd corpus field must not be silently dropped in favour of
        # the defaults.
        with pytest.raises(ManifestError, match=r"unknown corpus field\(s\) \['user'\]"):
            parse_manifest({"corpus": {"user": 5000}, "stories": ["s1"]})

    def test_bad_corpus_block_raises_manifest_error(self):
        manifest = parse_manifest({"corpus": {"users": "lots"}, "stories": ["s1"]})
        with pytest.raises(ManifestError):
            resolve_manifest(manifest)
        too_small = parse_manifest({"corpus": {"users": 50}, "stories": ["s1"]})
        with pytest.raises(ManifestError, match="invalid corpus block"):
            resolve_manifest(too_small)

    def test_load_manifest_round_trips_json(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"hours": 4, "stories": [INLINE_STORY]}))
        manifest = load_manifest(str(path))
        assert manifest.hours == 4
        assert manifest.source == str(path)

    def test_load_manifest_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ManifestError):
            load_manifest(str(path))


class TestResolution:
    def test_inline_stories_resolve_without_a_corpus(self):
        manifest = parse_manifest({"stories": [INLINE_STORY]})
        resolved = resolve_manifest(manifest)
        assert list(resolved.surfaces) == ["cascade-1"]
        assert resolved.skipped == []

    def test_empty_first_hour_is_skipped(self):
        empty = dict(INLINE_STORY, name="empty", values=[[0.0, 0.0, 0.0]] * 3)
        manifest = parse_manifest({"stories": [INLINE_STORY, empty]})
        resolved = resolve_manifest(manifest, training_times=[1.0, 2.0, 3.0])
        assert list(resolved.surfaces) == ["cascade-1"]
        assert resolved.skipped == ["empty"]

    def test_missing_training_anchor_raises_manifest_error(self):
        # An inline story whose times start after the first training hour
        # must fail with a clean ManifestError, not a KeyError traceback.
        late = dict(INLINE_STORY, name="late", times=[2, 3, 4])
        manifest = parse_manifest({"stories": [late]})
        with pytest.raises(ManifestError, match="training hour"):
            resolve_manifest(manifest, training_times=[1.0, 2.0, 3.0])

    def test_missing_later_training_hour_raises_manifest_error(self):
        # The whole window is validated up front, not just the anchor --
        # otherwise an oversized --hours fails deep inside calibration.
        manifest = parse_manifest({"stories": [INLINE_STORY]})  # times 1..3
        with pytest.raises(ManifestError, match=r"training hour\(s\) \[4\.0\]"):
            resolve_manifest(manifest, training_times=[1.0, 2.0, 3.0, 4.0])

    def test_corpus_stories_resolve_against_the_synthetic_corpus(self):
        manifest = parse_manifest(
            {
                "metric": "hops",
                "corpus": {"users": 900, "background_stories": 25, "seed": 1234},
                "stories": ["s1"],
            }
        )
        resolved = resolve_manifest(manifest, training_times=[1.0, 2.0])
        assert list(resolved.surfaces) == ["s1"]
        surface = resolved.surfaces["s1"]
        assert float(np.sum(surface.profile(1.0))) > 0

    def test_unknown_corpus_story_raises_manifest_error(self):
        manifest = parse_manifest(
            {
                "corpus": {"users": 900, "background_stories": 25, "seed": 1234},
                "stories": ["s5"],
            }
        )
        with pytest.raises(ManifestError, match="unknown corpus story 's5'"):
            resolve_manifest(manifest, training_times=[1.0, 2.0])

    def test_corpus_overrides_take_precedence_over_manifest_block(self):
        # Same corpus as the test above, but the manifest block names a
        # different seed that the caller's override must win against.
        manifest = parse_manifest(
            {
                "corpus": {"users": 900, "background_stories": 25, "seed": 999},
                "stories": ["s1"],
            }
        )
        overridden = resolve_manifest(
            manifest, corpus_overrides={"seed": 1234}, training_times=[1.0, 2.0]
        )
        reference = parse_manifest(
            {
                "corpus": {"users": 900, "background_stories": 25, "seed": 1234},
                "stories": ["s1"],
            }
        )
        expected = resolve_manifest(reference, training_times=[1.0, 2.0])
        assert np.array_equal(
            overridden.surfaces["s1"].values, expected.surfaces["s1"].values
        )
