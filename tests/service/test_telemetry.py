"""Tests for the in-process metrics registry."""

import threading

import pytest

from repro.service.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        counter = MetricsRegistry().counter("jobs")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("queue")
        gauge.set(10)
        gauge.inc()
        gauge.dec(4)
        assert gauge.value == 7.0


class TestHistogram:
    def test_cumulative_buckets(self):
        histogram = MetricsRegistry().histogram("t", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 5
        assert snapshot["sum"] == pytest.approx(56.05)
        assert snapshot["min"] == 0.05 and snapshot["max"] == 50.0
        # Cumulative (Prometheus 'le') convention, +Inf catches the overflow.
        assert snapshot["buckets"] == {"0.1": 1, "1": 3, "10": 4, "+Inf": 5}

    def test_boundary_value_lands_in_its_bucket(self):
        histogram = MetricsRegistry().histogram("t", buckets=(1.0, 2.0))
        histogram.observe(1.0)  # le convention: exactly-at-bound counts
        assert histogram.snapshot()["buckets"]["1"] == 1

    def test_empty_snapshot(self):
        snapshot = MetricsRegistry().histogram("t").snapshot()
        assert snapshot["count"] == 0
        assert snapshot["min"] is None and snapshot["mean"] is None

    def test_needs_buckets(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            MetricsRegistry().histogram("t", buckets=())


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a")

    def test_snapshot_is_plain_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z").inc(2)
        registry.gauge("a").set(1)
        registry.histogram("m").observe(0.2)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a", "m", "z"]
        assert snapshot["a"] == 1.0 and snapshot["z"] == 2.0
        assert snapshot["m"]["count"] == 1
        # Mutating the snapshot must not corrupt the registry.
        snapshot["m"]["buckets"]["+Inf"] = 999
        assert registry.histogram("m").snapshot()["buckets"]["+Inf"] == 1

    def test_thread_safety_under_contention(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        histogram = registry.histogram("t", buckets=(0.5,))

        def hammer():
            for _ in range(1000):
                counter.inc()
                histogram.observe(0.1)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000
        assert histogram.count == 4000

    def test_instruments_importable_directly(self):
        # The classes are part of the public service API surface.
        assert Counter is not None and Gauge is not None and Histogram is not None
