"""Tests for metric labels and the Prometheus text exposition renderer."""

import pytest

from repro.service.telemetry import MetricsRegistry


class TestLabels:
    def test_labeled_instruments_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("jobs", labels={"model": "dl"}).inc(2)
        registry.counter("jobs", labels={"model": "logistic"}).inc()
        registry.counter("jobs").inc(3)
        snapshot = registry.snapshot()
        assert snapshot["jobs"] == 3.0
        assert snapshot['jobs{model="dl"}'] == 2.0
        assert snapshot['jobs{model="logistic"}'] == 1.0

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        registry.counter("x", labels={"b": "2", "a": "1"}).inc()
        registry.counter("x", labels={"a": "1", "b": "2"}).inc()
        assert registry.snapshot()['x{a="1",b="2"}'] == 2.0

    def test_kind_mismatch_still_raises_for_labeled_names(self):
        registry = MetricsRegistry()
        registry.counter("x", labels={"a": "1"})
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x", labels={"a": "1"})


class TestPrometheusExposition:
    def test_counters_gauges_histograms_render(self):
        registry = MetricsRegistry()
        registry.counter("service.jobs_succeeded").inc(4)
        registry.counter("service.jobs_succeeded", labels={"model": "dl"}).inc(3)
        registry.counter(
            "service.jobs_succeeded", labels={"model": "logistic"}
        ).inc(1)
        registry.gauge("service.queue_depth").set(7)
        histogram = registry.histogram("service.shard_solve_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)

        text = registry.to_prometheus()
        lines = text.splitlines()

        assert "# TYPE repro_service_jobs_succeeded_total counter" in lines
        assert "repro_service_jobs_succeeded_total 4" in lines
        assert 'repro_service_jobs_succeeded_total{model="dl"} 3' in lines
        assert 'repro_service_jobs_succeeded_total{model="logistic"} 1' in lines

        assert "# TYPE repro_service_queue_depth gauge" in lines
        assert "repro_service_queue_depth 7" in lines

        assert "# TYPE repro_service_shard_solve_seconds histogram" in lines
        assert 'repro_service_shard_solve_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_service_shard_solve_seconds_bucket{le="1"} 2' in lines
        assert 'repro_service_shard_solve_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_service_shard_solve_seconds_count 3" in lines
        assert any(
            line.startswith("repro_service_shard_solve_seconds_sum") for line in lines
        )
        assert text.endswith("\n")

    def test_type_line_emitted_once_per_metric(self):
        registry = MetricsRegistry()
        registry.counter("jobs", labels={"model": "dl"}).inc()
        registry.counter("jobs", labels={"model": "sis"}).inc()
        text = registry.to_prometheus()
        assert text.count("# TYPE repro_jobs_total counter") == 1

    def test_labeled_histogram_merges_le_label(self):
        registry = MetricsRegistry()
        registry.histogram("t", buckets=(1.0,), labels={"model": "dl"}).observe(0.5)
        text = registry.to_prometheus()
        assert 'repro_t_bucket{model="dl",le="1"} 1' in text
        assert 'repro_t_sum{model="dl"} 0.5' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_custom_namespace(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(1)
        assert "acme_depth 1" in registry.to_prometheus(namespace="acme")

    def test_large_counters_render_exactly(self):
        # %g-style formatting would collapse 12345678 to 1.23457e+07; a
        # scraped counter must round-trip exactly or rate() misreports.
        registry = MetricsRegistry()
        registry.counter("stories").inc(12_345_678)
        registry.gauge("depth").set(0.1)
        text = registry.to_prometheus()
        assert "repro_stories_total 12345678" in text
        assert "repro_depth 0.1" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("jobs", labels={"model": 'my"mo\\del'}).inc()
        text = registry.to_prometheus()
        assert 'repro_jobs_total{model="my\\"mo\\\\del"} 1' in text

    def test_help_and_type_once_per_base_with_variants_adjacent(self):
        # Registry keys sort lexicographically, which would interleave an
        # unrelated metric between a bare series and its labeled variants
        # ("jobs" < "jobs_other" < 'jobs{model=...}').  Exposition must
        # still group each base name under exactly one HELP/TYPE header.
        registry = MetricsRegistry()
        registry.counter("jobs").inc()
        registry.counter("jobs_other").inc()
        registry.counter("jobs", labels={"model": "dl"}).inc(2)
        registry.counter("jobs", labels={"model": "sis"}).inc(3)
        text = registry.to_prometheus()
        assert text.count("# HELP repro_jobs_total ") == 1
        assert text.count("# TYPE repro_jobs_total counter") == 1
        assert text.count("# HELP repro_jobs_other_total ") == 1
        lines = text.splitlines()
        start = lines.index("# TYPE repro_jobs_total counter")
        block = lines[start + 1 : start + 4]
        assert block == [
            "repro_jobs_total 1",
            'repro_jobs_total{model="dl"} 2',
            'repro_jobs_total{model="sis"} 3',
        ]
