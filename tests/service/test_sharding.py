"""Tests for corpus sharding by batched-solve compatibility."""

import numpy as np
import pytest

from repro.cascade.density import DensitySurface
from repro.service import CorpusSharder, ShardAutotuner, ShardKey


def make_surface(distances, times, scale=1.0):
    distances = np.asarray(distances, dtype=float)
    times = np.asarray(times, dtype=float)
    values = scale * np.outer(np.linspace(1.0, 2.0, times.size), np.linspace(5.0, 1.0, distances.size))
    return DensitySurface(distances, times, values, np.ones(distances.size))


class TestShardKey:
    def test_key_includes_spatial_signature_and_solver_config(self):
        sharder = CorpusSharder(points_per_unit=12, max_step=0.05, backend="internal", operator="banded")
        key = sharder.key_for(make_surface([1, 2, 3], [1, 2, 3, 4]))
        assert key == ShardKey(
            lower=1.0,
            upper=3.0,
            initial_time=1.0,
            points_per_unit=12,
            max_step=0.05,
            backend="internal",
            operator="banded",
        )

    def test_training_window_anchors_initial_time(self):
        sharder = CorpusSharder()
        key = sharder.key_for(make_surface([1, 2, 3], [1, 2, 3, 4]), training_times=[3.0, 2.0, 4.0])
        assert key.initial_time == 2.0
        assert key.training_times == (2.0, 3.0, 4.0)

    def test_empty_training_window_rejected(self):
        with pytest.raises(ValueError):
            CorpusSharder().key_for(make_surface([1, 2], [1, 2]), training_times=[])

    def test_different_solver_config_gives_different_keys(self):
        surface = make_surface([1, 2, 3], [1, 2, 3])
        banded = CorpusSharder(operator="banded").key_for(surface)
        thomas = CorpusSharder(operator="thomas").key_for(surface)
        assert banded != thomas


class TestShardGrouping:
    def test_same_signature_lands_in_one_shard(self):
        surfaces = {
            "a": make_surface([1, 2, 3, 4, 5], [1, 2, 3, 4], scale=1.0),
            "b": make_surface([1, 2, 3, 4, 5], [1, 2, 3, 4], scale=2.0),
            "c": make_surface([1, 2, 3, 4, 5], [1, 2, 3, 4], scale=0.5),
        }
        shards = CorpusSharder().shard(surfaces)
        assert len(shards) == 1
        assert shards[0].story_names == ("a", "b", "c")

    def test_heterogeneous_intervals_split(self):
        surfaces = {
            "wide": make_surface([1, 2, 3, 4, 5], [1, 2, 3]),
            "narrow": make_surface([1, 2, 3], [1, 2, 3]),
            "wide2": make_surface([1, 2, 3, 4, 5], [1, 2, 3]),
        }
        shards = CorpusSharder().shard(surfaces)
        assert [shard.story_names for shard in shards] == [("wide", "wide2"), ("narrow",)]
        assert shards[0].key.upper == 5.0
        assert shards[1].key.upper == 3.0

    def test_max_shard_size_chunks_large_groups(self):
        surfaces = {
            f"s{i}": make_surface([1, 2, 3], [1, 2, 3], scale=1.0 + i) for i in range(7)
        }
        shards = CorpusSharder(max_shard_size=3).shard(surfaces)
        assert [len(shard) for shard in shards] == [3, 3, 1]
        # Every story appears exactly once across all shards.
        names = [name for shard in shards for name in shard.story_names]
        assert names == [f"s{i}" for i in range(7)]

    def test_invalid_max_shard_size_rejected(self):
        with pytest.raises(ValueError):
            CorpusSharder(max_shard_size=0)

    def test_empty_corpus_gives_no_shards(self):
        assert CorpusSharder().shard({}) == []


class TestShardAutotuner:
    def test_prior_drives_first_recommendation(self):
        autotuner = ShardAutotuner(
            target_shard_seconds=1.0, initial_story_seconds=0.1, max_size=64
        )
        assert autotuner.observations == 0
        assert autotuner.recommended_size() == 10  # 1.0s budget / 0.1s per story

    def test_ewma_tracks_observations(self):
        autotuner = ShardAutotuner(alpha=0.5, initial_story_seconds=0.1)
        autotuner.observe(stories=10, seconds=3.0)  # 0.3s per story
        assert autotuner.ewma_story_seconds == pytest.approx(0.2)  # half-way
        autotuner.observe(stories=10, seconds=3.0)
        assert autotuner.ewma_story_seconds == pytest.approx(0.25)
        assert autotuner.observations == 2

    def test_cheap_stories_grow_shards_expensive_shrink(self):
        autotuner = ShardAutotuner(
            target_shard_seconds=0.5, alpha=1.0, min_size=2, max_size=32
        )
        autotuner.observe(stories=4, seconds=0.02)  # 5 ms/story -> budget fits 100
        assert autotuner.recommended_size() == 32  # clamped to max
        autotuner.observe(stories=4, seconds=4.0)  # 1 s/story -> budget fits 0
        assert autotuner.recommended_size() == 2  # clamped to min

    def test_snapshot_is_plain_and_consistent(self):
        autotuner = ShardAutotuner(target_shard_seconds=2.0, max_size=16)
        autotuner.observe(stories=5, seconds=1.0)
        snapshot = autotuner.snapshot()
        assert snapshot["observations"] == 1
        assert snapshot["max_size"] == 16
        assert snapshot["recommended_size"] == autotuner.recommended_size()
        assert snapshot["ewma_story_seconds"] == autotuner.ewma_story_seconds

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            ShardAutotuner(alpha=0.0)
        with pytest.raises(ValueError, match="target_shard_seconds"):
            ShardAutotuner(target_shard_seconds=0.0)
        with pytest.raises(ValueError, match="min_size <= max_size"):
            ShardAutotuner(min_size=8, max_size=4)
        with pytest.raises(ValueError, match="initial_story_seconds"):
            ShardAutotuner(initial_story_seconds=0.0)

    def test_invalid_observations_rejected(self):
        autotuner = ShardAutotuner()
        with pytest.raises(ValueError, match="stories"):
            autotuner.observe(stories=0, seconds=1.0)
        with pytest.raises(ValueError, match="seconds"):
            autotuner.observe(stories=1, seconds=-1.0)

    def test_zero_second_observations_recommend_max_not_crash(self):
        # seconds == 0 is legal (clock granularity on very fast solves); with
        # alpha = 1 the EWMA becomes exactly 0 and the recommendation must be
        # the max size, not a ZeroDivisionError inside the dispatcher.
        autotuner = ShardAutotuner(alpha=1.0, max_size=32)
        autotuner.observe(stories=4, seconds=0.0)
        assert autotuner.ewma_story_seconds == 0.0
        assert autotuner.recommended_size() == 32
