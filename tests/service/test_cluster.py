"""Tests for the cluster execution backend (router + worker-daemon fleet).

The load-bearing properties mirror the other backend tests:

* the ``cluster`` backend is a first-class registry citizen and validates
  its fleet configuration up front;
* :func:`route_hash` is deterministic (cache affinity survives router
  restarts) and workers-file parsing reports errors with file:line;
* routing shards over real worker daemons is bit-identical to the thread
  executor -- the cluster decides *where* ``solve_shard_payload`` runs,
  never *how* it computes;
* SIGKILLing one of two worker daemons mid-job reroutes its in-flight
  shards through the service's bisection-retry path and the job still
  completes bit-identically, with ``cluster.reroutes`` incremented.
"""

import asyncio
import base64
import contextlib
import json
import os
import pickle
import socket
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import ModelSpec, SolverConfig
from repro.service import (
    ClusterExecutionBackend,
    DaemonClient,
    PredictionDaemon,
    PredictionService,
    ShardPayload,
    WorkerCrashError,
    WorkerPool,
    AddressError,
    available_executors,
    create_executor,
    load_worker_addresses,
    parse_manifest,
    resolve_manifest,
    route_hash,
)
from repro.service.sharding import CorpusSharder, ShardKey

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

HOURS = 4
TRAINING_TIMES = [float(t) for t in range(1, HOURS + 1)]
EVALUATION_TIMES = TRAINING_TIMES[1:]
SOLVER = SolverConfig(points_per_unit=12, max_step=0.02)


def inline_story(name: str, scale: float = 1.0) -> dict:
    return {
        "name": name,
        "distances": [1, 2, 3, 4, 5],
        "times": [1, 2, 3, 4],
        "values": [
            [scale * v for v in row]
            for row in (
                [5.0, 2.0, 2.5, 1.5, 1.0],
                [7.0, 3.0, 3.5, 2.0, 1.4],
                [9.0, 4.2, 4.6, 2.6, 1.9],
                [11.0, 5.5, 5.8, 3.3, 2.5],
            )
        ],
    }


def manifest_payload(*stories) -> dict:
    return {"metric": "hops", "hours": HOURS, "stories": list(stories)}


def corpus_surfaces(count: int = 5) -> dict:
    stories = [inline_story(f"s{i}", scale=0.7 + 0.1 * i) for i in range(count)]
    manifest = parse_manifest(manifest_payload(*stories), source="<test>")
    return resolve_manifest(manifest, None, TRAINING_TIMES).surfaces


def shard_key(**overrides) -> ShardKey:
    fields = dict(
        lower=1.0,
        upper=5.0,
        initial_time=1.0,
        points_per_unit=12,
        max_step=0.02,
        backend="dense",
        operator="cached",
        training_times=tuple(TRAINING_TIMES),
        evaluation_times=tuple(EVALUATION_TIMES),
        model="dl",
    )
    fields.update(overrides)
    return ShardKey(**fields)


@contextlib.asynccontextmanager
async def running_daemon(tmp_path, **daemon_kwargs):
    """A daemon serving a Unix socket in this loop; shut down on exit."""
    socket_path = str(tmp_path / "daemon.sock")
    daemon = PredictionDaemon(**daemon_kwargs)
    server = asyncio.ensure_future(daemon.serve_unix(socket_path))
    deadline = time.monotonic() + 5.0
    while not os.path.exists(socket_path):
        if server.done() or time.monotonic() > deadline:
            await server  # surface the startup error
            raise RuntimeError("daemon socket never appeared")
        await asyncio.sleep(0.005)
    try:
        yield socket_path, daemon
    finally:
        if not server.done():
            try:
                async with await DaemonClient.connect_unix(socket_path) as client:
                    await client.shutdown()
            except (ConnectionError, OSError):
                server.cancel()
        await asyncio.gather(server, return_exceptions=True)


@contextlib.asynccontextmanager
async def worker_fleet(count: int = 2, **daemon_kwargs):
    """``count`` in-process worker daemons on ephemeral TCP ports."""
    workers, tasks = [], []
    try:
        for _ in range(count):
            worker = PredictionDaemon(max_workers=2, **daemon_kwargs)
            tasks.append(asyncio.ensure_future(worker.serve_tcp("127.0.0.1", 0)))
            deadline = time.monotonic() + 10.0
            while worker.listener is None or worker.listener.address.port in (
                None,
                0,
            ):
                if time.monotonic() > deadline:
                    raise RuntimeError("worker daemon never bound its port")
                await asyncio.sleep(0.01)
            workers.append(worker)
        yield [str(worker.listener.address) for worker in workers]
    finally:
        for worker in workers:
            worker.stop_event.set()
        await asyncio.gather(*tasks, return_exceptions=True)


def free_tcp_port() -> int:
    """Reserve an ephemeral port for a subprocess worker daemon."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestRegistryAndRouting:
    def test_cluster_backend_is_registered(self):
        assert "cluster" in available_executors()

    def test_route_hash_is_deterministic_and_model_sensitive(self):
        key = shard_key()
        assert route_hash(key) == route_hash(shard_key())
        # Distinct signatures must spread: the model, grids and windows
        # are all part of the routing material.
        variants = [
            shard_key(model="fixed-front"),
            shard_key(points_per_unit=16),
            shard_key(training_times=tuple(TRAINING_TIMES[:-1])),
            shard_key(evaluation_times=None),
        ]
        hashes = {route_hash(k) for k in [key, *variants]}
        assert len(hashes) == len(variants) + 1
        assert all(isinstance(h, int) and h >= 0 for h in hashes)

    def test_pool_validates_fleet_configuration(self):
        with pytest.raises(ValueError, match="at least one worker"):
            WorkerPool([])
        with pytest.raises(AddressError, match="not a dialable"):
            WorkerPool(["stdio"])
        with pytest.raises(ValueError, match="needs worker addresses"):
            ClusterExecutionBackend(max_workers=2)

    def test_create_executor_builds_cluster_backend(self):
        backend = create_executor(
            "cluster",
            max_workers=2,
            options={"workers": ["tcp:127.0.0.1:1", "tcp:127.0.0.1:2"]},
        )
        info = backend.describe()
        assert info["executor"] == "cluster"
        assert [entry["worker"] for entry in info["fleet"]] == [
            "tcp:127.0.0.1:1",
            "tcp:127.0.0.1:2",
        ]
        assert all(entry["alive"] is False for entry in info["fleet"])
        assert info["shards_stolen"] == 0 and info["reroutes"] == 0
        backend.shutdown()

    def test_stealing_targets_least_loaded_worker(self):
        pool = WorkerPool(["tcp:127.0.0.1:1", "tcp:127.0.0.1:2", "tcp:127.0.0.1:3"])
        for link in pool.workers:
            link.alive = True
        key = shard_key()
        preferred = pool.route(key)
        assert pool.shards_stolen == 0  # balanced fleet never steals
        # Load the preferred worker past the fleet median: the next route
        # for the same key must steal to the least-loaded worker.
        preferred.inflight = 3
        target = pool.route(key)
        assert target is not preferred
        assert target.inflight == min(l.inflight for l in pool.workers)
        assert pool.shards_stolen == 1


class TestWorkersFile:
    def test_parses_addresses_skipping_comments_and_blanks(self, tmp_path):
        path = tmp_path / "workers.txt"
        path.write_text(
            "# the fleet\n"
            "\n"
            "tcp:127.0.0.1:7001\n"
            "tcp:127.0.0.1:7002   # second box\n"
            "unix:/tmp/worker.sock\n"
        )
        addresses = load_worker_addresses(str(path))
        assert [str(a) for a in addresses] == [
            "tcp:127.0.0.1:7001",
            "tcp:127.0.0.1:7002",
            "unix:/tmp/worker.sock",
        ]

    def test_bad_line_reports_file_and_line(self, tmp_path):
        path = tmp_path / "workers.txt"
        path.write_text("tcp:127.0.0.1:7001\ntcp:nope\n")
        with pytest.raises(AddressError, match=r"workers\.txt:2"):
            load_worker_addresses(str(path))

    def test_stdio_line_rejected_with_location(self, tmp_path):
        path = tmp_path / "workers.txt"
        path.write_text("# fleet\nstdio\n")
        with pytest.raises(AddressError, match=r"workers\.txt:2.*stdio"):
            load_worker_addresses(str(path))


class TestConnectRetry:
    def test_connect_retries_until_listener_appears(self):
        async def run():
            port = free_tcp_port()

            async def late_server():
                await asyncio.sleep(0.3)
                return await asyncio.start_server(
                    lambda r, w: None, "127.0.0.1", port
                )

            server_task = asyncio.ensure_future(late_server())
            client = await DaemonClient.connect(
                f"tcp:127.0.0.1:{port}", retries=8, backoff=0.05
            )
            client.close_nowait()
            server = await server_task
            server.close()
            await server.wait_closed()

        asyncio.run(run())

    def test_zero_retries_fail_fast(self):
        async def run():
            port = free_tcp_port()
            with pytest.raises((ConnectionError, OSError)):
                await DaemonClient.connect(f"tcp:127.0.0.1:{port}", retries=0)

        asyncio.run(run())

    def test_retry_parameters_validated(self):
        async def run():
            with pytest.raises(ValueError, match="retries"):
                await DaemonClient.connect("tcp:127.0.0.1:1", retries=-1)
            with pytest.raises(ValueError, match="backoff"):
                await DaemonClient.connect(
                    "tcp:127.0.0.1:1", retries=1, backoff=0.0
                )

        asyncio.run(run())


class TestWorkerProtocolOp:
    def _payload(self) -> ShardPayload:
        surfaces = corpus_surfaces(2)
        shards = CorpusSharder(solver=SOLVER, model="dl").shard(
            surfaces, TRAINING_TIMES, EVALUATION_TIMES
        )
        assert len(shards) == 1
        return ShardPayload(
            key=shards[0].key,
            spec=ModelSpec(name="dl", params={}, solver=SOLVER),
            surfaces=dict(shards[0].surfaces),
        )

    def test_worker_op_answers_pickled_report(self, tmp_path):
        payload = self._payload()

        async def run():
            async with running_daemon(tmp_path) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    data = base64.b64encode(
                        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
                    ).decode("ascii")
                    return await client.request(
                        {"op": "worker", "id": "w-1", "payload": data}
                    )

        event = asyncio.run(run())
        assert event["event"] == "worker_result"
        assert event["id"] == "w-1"
        assert event["worker"].startswith("pid-")
        report = pickle.loads(base64.b64decode(event["report"]))
        assert set(report.outcomes) == set(self._payload().surfaces)

    def test_worker_op_rejects_bad_payloads(self, tmp_path):
        async def run():
            async with running_daemon(tmp_path) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    missing = await client.request({"op": "worker", "id": "w-1"})
                    garbage = await client.request(
                        {"op": "worker", "id": "w-2", "payload": "not base64!!"}
                    )
                    return missing, garbage

        missing, garbage = asyncio.run(run())
        assert "needs a base64 'payload'" in missing["error"]
        assert "undecodable worker payload" in garbage["error"]


class TestClusterExecution:
    def test_results_bit_identical_to_thread_executor(self):
        surfaces = corpus_surfaces(5)

        async def run():
            async with worker_fleet(2) as addresses:
                async with PredictionService(
                    max_workers=2,
                    executor="cluster",
                    executor_options={"workers": addresses},
                    max_shard_size=2,
                ) as service:
                    results = await service.score_corpus(
                        surfaces, TRAINING_TIMES, EVALUATION_TIMES
                    )
                    stats = service.stats()
                    metrics = service.metrics.snapshot()
                    prometheus = service.metrics.to_prometheus()
            async with PredictionService(max_workers=2, max_shard_size=2) as ref:
                reference = await ref.score_corpus(
                    surfaces, TRAINING_TIMES, EVALUATION_TIMES
                )
            return results, reference, stats, metrics, prometheus

        results, reference, stats, metrics, prometheus = asyncio.run(run())
        assert set(results) == set(surfaces)
        for name in results:
            assert results[name].overall_accuracy == reference[name].overall_accuracy
            assert np.array_equal(
                results[name].predicted.values, reference[name].predicted.values
            )

        info = stats["executor_info"]
        assert info["executor"] == "cluster"
        fleet = info["fleet"]
        assert len(fleet) == 2 and all(entry["alive"] for entry in fleet)
        assert sum(entry["shards_solved"] for entry in fleet) >= 1
        assert metrics["cluster.workers_alive"] == 2
        assert any(
            key.startswith("cluster.worker_queue_depth{") for key in metrics
        )
        assert "repro_cluster_worker_queue_depth" in prometheus

    def test_unreachable_fleet_fails_the_job_with_crash_error(self):
        surfaces = corpus_surfaces(1)

        async def run():
            port = free_tcp_port()
            async with PredictionService(
                max_workers=1,
                executor="cluster",
                executor_options={
                    "workers": [f"tcp:127.0.0.1:{port}"],
                    "connect_retries": 0,
                },
            ) as service:
                await service.score_corpus(
                    surfaces, TRAINING_TIMES, EVALUATION_TIMES
                )

        with pytest.raises(WorkerCrashError, match="no cluster worker is reachable"):
            asyncio.run(run())


class TestWorkerLoss:
    def test_sigkill_mid_job_reroutes_and_completes_bit_identically(self):
        surfaces = corpus_surfaces(6)

        procs: "dict[str, subprocess.Popen]" = {}
        try:
            for _ in range(2):
                port = free_tcp_port()
                address = f"tcp:127.0.0.1:{port}"
                procs[address] = subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "daemon",
                        "--listen",
                        address,
                        "--workers",
                        "2",
                    ],
                    env={**os.environ, "PYTHONPATH": REPO_SRC},
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )

            async def run():
                async with PredictionService(
                    max_workers=2,
                    executor="cluster",
                    executor_options={
                        "workers": list(procs),
                        "connect_retries": 10,
                        "connect_backoff": 0.25,
                    },
                    max_shard_size=1,
                ) as service:
                    scoring = asyncio.ensure_future(
                        service.score_corpus(
                            surfaces, TRAINING_TIMES, EVALUATION_TIMES
                        )
                    )
                    pool = service._backend.pool
                    victim = None
                    deadline = time.monotonic() + 60.0
                    while victim is None:
                        if scoring.done() or time.monotonic() > deadline:
                            raise AssertionError(
                                "never caught a worker with an in-flight shard"
                            )
                        for link in pool.workers:
                            if link.alive and link.inflight >= 1:
                                victim = link
                                break
                        else:
                            await asyncio.sleep(0.002)
                    # SIGKILL the worker while its shard is in flight: the
                    # reader sees the dropped connection, fails the shard
                    # with WorkerCrashError and the service bisects it onto
                    # the survivor.
                    procs[victim.label].kill()
                    results = await scoring
                    metrics = service.metrics.snapshot()
                    fleet = service.stats()["executor_info"]["fleet"]
                    return results, metrics, fleet, victim.label

            results, metrics, fleet, victim_label = asyncio.run(run())
        finally:
            for proc in procs.values():
                proc.kill()
            for proc in procs.values():
                proc.wait(timeout=15)

        assert set(results) == set(surfaces)
        assert metrics["cluster.reroutes"] >= 1
        assert metrics["service.worker_crashes"] >= 1
        by_label = {entry["worker"]: entry for entry in fleet}
        assert by_label[victim_label]["alive"] is False
        survivors = [e for e in fleet if e["alive"]]
        assert len(survivors) == 1

        # Bit-identity with the thread executor survives the fault.
        async def reference_run():
            async with PredictionService(max_workers=2, max_shard_size=1) as ref:
                return await ref.score_corpus(
                    surfaces, TRAINING_TIMES, EVALUATION_TIMES
                )

        reference = asyncio.run(reference_run())
        for name in reference:
            assert np.array_equal(
                results[name].predicted.values, reference[name].predicted.values
            )


class TestJournalResume:
    def _write_journal(self, journal_dir: Path, record: dict) -> None:
        journal_dir.mkdir(parents=True, exist_ok=True)
        with open(journal_dir / "journal.jsonl", "w", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def test_resume_reruns_interrupted_job_to_completion(self, tmp_path):
        journal_dir = tmp_path / "journal"
        manifest = manifest_payload(inline_story("alpha"), inline_story("beta", 0.8))
        self._write_journal(
            journal_dir,
            {
                "type": "submit",
                "job": "job-resume",
                "t": 1.0,
                "stories": ["alpha", "beta"],
                "skipped": [],
                "timeout": None,
                "manifest": manifest,
            },
        )

        async def run():
            async with running_daemon(
                tmp_path, journal_dir=str(journal_dir), resume=True
            ) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    deadline = time.monotonic() + 30.0
                    while True:
                        status = await client.status("job-resume")
                        if status.get("status") == "completed":
                            break
                        if time.monotonic() > deadline:
                            raise AssertionError(
                                f"resumed job never completed: {status}"
                            )
                        await asyncio.sleep(0.05)
                    stats = await client.stats()
                    return status, stats

        status, stats = asyncio.run(run())
        assert status["stories"]["succeeded"] == 2
        assert stats["metrics"]["daemon.jobs_resumed"] == 1

    def test_record_without_manifest_stays_interrupted(self, tmp_path):
        journal_dir = tmp_path / "journal"
        self._write_journal(
            journal_dir,
            {
                "type": "submit",
                "job": "job-legacy",
                "t": 1.0,
                "stories": ["alpha"],
                "skipped": [],
                "timeout": None,
            },
        )

        async def run():
            async with running_daemon(
                tmp_path, journal_dir=str(journal_dir), resume=True
            ) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    status = await client.status("job-legacy")
                    stats = await client.stats()
                    return status, stats

        status, stats = asyncio.run(run())
        assert status["status"] == "interrupted"
        assert stats["metrics"].get("daemon.jobs_resumed", 0) == 0
