"""Tests for the pluggable execution backends (thread vs process pools).

The load-bearing properties:

* the executor registry mirrors the model registry (register / unregister /
  typed unknown-name error), and the service validates the executor name at
  construction time;
* the ``process`` backend is bit-identical to the ``thread`` backend for
  every registered model -- the backends choose *where*
  :func:`solve_shard_payload` runs, never *how* it computes;
* shard payloads survive the pickling boundary, including under the
  ``spawn`` start method where workers inherit nothing;
* a worker death mid-shard breaks only the in-flight shards: the pool is
  respawned, the shards are bisected-and-requeued, and a deterministically
  crashing story fails alone while its shard-mates succeed.
"""

import asyncio
import multiprocessing
import os
import pickle
import signal

import numpy as np
import pytest

from repro.cascade.density import DensitySurface
from repro.core.config import ModelSpec, SolverConfig
from repro.core.dl_model import DiffusiveLogisticModel
from repro.core.errors import UnknownExecutorError
from repro.core.initial_density import InitialDensity
from repro.core.parameters import PAPER_S1_HOP_PARAMETERS
from repro.models import get_model
from repro.service import (
    PredictionService,
    ShardPayload,
    ThreadExecutionBackend,
    WorkerCrashError,
    available_executors,
    create_executor,
    get_executor_factory,
    register_executor,
    score_corpus_sync,
    solve_shard_payload,
    unregister_executor,
)
from repro.service import execution
from repro.service.sharding import CorpusSharder

TRAINING_TIMES = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
EVALUATION_TIMES = TRAINING_TIMES[1:]
SOLVER = SolverConfig(points_per_unit=12, max_step=0.02)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def synthetic_surface(seed_densities):
    phi = InitialDensity([1, 2, 3, 4, 5], seed_densities)
    model = DiffusiveLogisticModel(
        PAPER_S1_HOP_PARAMETERS, points_per_unit=12, max_step=0.02
    )
    surface = model.predict(phi, [float(t) for t in range(1, 9)])
    return DensitySurface(
        distances=surface.distances,
        times=surface.times,
        values=surface.values,
        group_sizes=np.ones(surface.distances.size),
    )


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(23)
    return {
        f"story{i}": synthetic_surface(list(2.0 + 3.0 * rng.random(5)))
        for i in range(4)
    }


def shard_payload_for(model_name, corpus, params=None):
    """Build the payload the process backend would ship for this corpus."""
    spec = ModelSpec(name=model_name, params=params or {}, solver=SOLVER)
    shards = CorpusSharder(solver=SOLVER, model=model_name).shard(
        corpus, TRAINING_TIMES, EVALUATION_TIMES
    )
    assert len(shards) == 1
    return ShardPayload(
        key=shards[0].key, spec=spec, surfaces=dict(shards[0].surfaces)
    )


class TestExecutorRegistry:
    def test_builtins_are_registered(self):
        names = available_executors()
        assert "thread" in names
        assert "process" in names

    def test_unknown_executor_raises_with_registered_list(self):
        with pytest.raises(UnknownExecutorError) as excinfo:
            get_executor_factory("frobnicate")
        message = str(excinfo.value)
        assert "frobnicate" in message
        assert "thread" in message and "process" in message
        # A failed lookup is a KeyError, so dict-style handling works too.
        assert isinstance(excinfo.value, KeyError)

    def test_service_validates_executor_at_construction(self):
        with pytest.raises(UnknownExecutorError):
            PredictionService(solver=SOLVER, executor="frobnicate")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_executor("thread", ThreadExecutionBackend)

    def test_runtime_registered_backend_serves_a_corpus(self, corpus):
        # A custom backend registered at runtime is selectable by name,
        # exactly like a runtime-registered model.
        class TaggedThreadBackend(ThreadExecutionBackend):
            kind = "tagged-thread"

        register_executor("tagged-thread", TaggedThreadBackend)
        try:
            results = score_corpus_sync(
                corpus,
                training_times=TRAINING_TIMES,
                evaluation_times=EVALUATION_TIMES,
                parameters=PAPER_S1_HOP_PARAMETERS,
                solver=SOLVER,
                executor="tagged-thread",
            )
            assert set(results) == set(corpus)
        finally:
            unregister_executor("tagged-thread")
        assert "tagged-thread" not in available_executors()
        with pytest.raises(UnknownExecutorError):
            unregister_executor("tagged-thread")

    def test_create_executor_forwards_options(self):
        backend = create_executor(
            "process", max_workers=2, options={"start_method": "spawn"}
        )
        assert backend.kind == "process"
        assert backend.workers == 2
        assert backend.start_method == "spawn"
        assert backend.describe()["start_method"] == "spawn"

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="max_workers"):
            create_executor("thread", max_workers=0)


class TestProcessBackendEquivalence:
    @pytest.mark.parametrize(
        "model_name", ["dl", "logistic", "sis", "linear-influence"]
    )
    def test_process_matches_thread(self, corpus, model_name):
        kwargs = dict(
            training_times=TRAINING_TIMES,
            evaluation_times=EVALUATION_TIMES,
            model=model_name,
            solver=SOLVER,
            max_workers=2,
            max_shard_size=2,  # several shards, so both pools actually fan out
        )
        if model_name == "dl":
            kwargs["parameters"] = PAPER_S1_HOP_PARAMETERS
        reference = score_corpus_sync(corpus, **kwargs)
        served = score_corpus_sync(corpus, executor="process", **kwargs)

        assert set(served) == set(reference)
        for name in corpus:
            assert np.array_equal(
                served[name].predicted.values, reference[name].predicted.values
            ), f"{model_name}: {name} diverged across the process boundary"
            assert (
                served[name].overall_accuracy == reference[name].overall_accuracy
            )

    def test_stats_and_metrics_name_the_pool(self, corpus):
        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS,
                solver=SOLVER,
                executor="process",
                max_workers=2,
            ) as service:
                jobs = [
                    await service.submit(
                        name, surface, TRAINING_TIMES, EVALUATION_TIMES
                    )
                    for name, surface in corpus.items()
                ]
                for job in jobs:
                    await job.wait()
                return service.stats(), service.metrics.snapshot()

        stats, metrics = asyncio.run(run())
        assert stats["executor"] == "process"
        assert stats["workers"] == 2
        info = stats["executor_info"]
        assert info["executor"] == "process"
        assert info["workers"] == 2
        assert info["respawns"] == 0
        assert info["start_method"] in multiprocessing.get_all_start_methods()
        # Per-worker labelled counters exist alongside the unlabelled totals.
        worker_counts = {
            key: value
            for key, value in metrics.items()
            if key.startswith('service.stories_solved{worker="')
        }
        assert worker_counts
        assert sum(worker_counts.values()) == metrics["service.stories_solved"]

    def test_thread_backend_reports_identity_too(self, corpus):
        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS, solver=SOLVER, max_workers=3
            ) as service:
                job = await service.submit(
                    "story0", corpus["story0"], TRAINING_TIMES, EVALUATION_TIMES
                )
                await job.wait()
                return service.stats(), service.metrics.snapshot()

        stats, metrics = asyncio.run(run())
        assert stats["executor"] == "thread"
        assert stats["executor_info"] == {"executor": "thread", "workers": 3}
        assert metrics['service.worker_pool_size{executor="thread"}'] == 3


class TestShardPayloadPickling:
    @pytest.mark.parametrize(
        "model_name, params",
        [
            ("dl", {"parameters": PAPER_S1_HOP_PARAMETERS}),
            ("logistic", {}),
            ("sis", {"pool_percent": 40.0}),
            ("linear-influence", {"ridge": 1e-3}),
        ],
    )
    def test_round_trip_preserves_the_solve(self, corpus, model_name, params):
        payload = shard_payload_for(model_name, corpus, params)
        restored = pickle.loads(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )
        assert restored.key == payload.key
        assert restored.spec == payload.spec
        assert set(restored.surfaces) == set(payload.surfaces)

        reference = solve_shard_payload(payload)
        round_tripped = solve_shard_payload(restored)
        for name in corpus:
            assert np.array_equal(
                round_tripped[name].predicted.values,
                reference[name].predicted.values,
            )

    def test_spawned_worker_solves_a_payload(self, corpus):
        # The strictest pickling check: a spawn-context child shares no
        # memory with this process, so the payload, the registry re-import
        # in the worker initializer and the result must all round-trip.
        small = {"story0": corpus["story0"]}
        reference = score_corpus_sync(
            small,
            training_times=TRAINING_TIMES,
            evaluation_times=EVALUATION_TIMES,
            model="logistic",
            solver=SOLVER,
        )
        served = score_corpus_sync(
            small,
            training_times=TRAINING_TIMES,
            evaluation_times=EVALUATION_TIMES,
            model="logistic",
            solver=SOLVER,
            executor="process",
            executor_options={"start_method": "spawn"},
        )
        assert np.array_equal(
            served["story0"].predicted.values,
            reference["story0"].predicted.values,
        )


@pytest.mark.skipif(not HAVE_FORK, reason="worker-kill tests need fork workers")
class TestWorkerCrashRecovery:
    def test_crashed_shard_is_retried_on_a_fresh_pool(
        self, corpus, tmp_path, monkeypatch
    ):
        # The first shard any worker picks up kills that worker outright
        # (SIGKILL -- no exception, no cleanup, the pool just breaks); the
        # bisected retries then solve normally.  Forked workers inherit the
        # patched module, so the crash happens on the far side of the pool.
        flag = tmp_path / "crashed-once"
        real = execution.solve_shard_payload

        def crash_once(payload):
            if not flag.exists():
                flag.write_text("x")
                os.kill(os.getpid(), signal.SIGKILL)
            return real(payload)

        monkeypatch.setattr(execution, "solve_shard_payload", crash_once)

        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS,
                solver=SOLVER,
                executor="process",
                executor_options={"start_method": "fork"},
                max_workers=1,
            ) as service:
                jobs = [
                    await service.submit(
                        name, surface, TRAINING_TIMES, EVALUATION_TIMES
                    )
                    for name, surface in corpus.items()
                ]
                results = {job.name: await job.wait() for job in jobs}
                return results, service.stats(), service.metrics.snapshot()

        results, stats, metrics = asyncio.run(run())
        assert set(results) == set(corpus)
        assert stats["failed"] == 0
        assert stats["shards_retried"] >= 1
        assert stats["executor_info"]["respawns"] == 1
        assert metrics["service.worker_crashes"] == 1

    def test_deterministic_crasher_fails_alone(self, corpus, monkeypatch):
        # A story that *always* kills its worker must end up failing alone
        # (bisection separates it from its shard-mates), every shard-mate
        # must still succeed, and the service must stay usable afterwards.
        real = execution.solve_shard_payload

        def crash_on_poison(payload):
            if "poison" in payload.surfaces:
                os.kill(os.getpid(), signal.SIGKILL)
            return real(payload)

        monkeypatch.setattr(execution, "solve_shard_payload", crash_on_poison)
        surfaces = dict(corpus)
        surfaces["poison"] = surfaces["story0"]

        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS,
                solver=SOLVER,
                executor="process",
                executor_options={"start_method": "fork"},
                max_workers=1,
                max_shard_retries=3,
            ) as service:
                jobs = {
                    name: await service.submit(
                        name, surface, TRAINING_TIMES, EVALUATION_TIMES
                    )
                    for name, surface in surfaces.items()
                }
                outcomes = {}
                for name, job in jobs.items():
                    try:
                        outcomes[name] = await job.wait()
                    except WorkerCrashError as error:
                        outcomes[name] = error
                stats = service.stats()

                # The pool was respawned after every kill; the service must
                # still solve new work on the final pool.
                followup = await service.submit(
                    "followup",
                    surfaces["story0"],
                    TRAINING_TIMES,
                    EVALUATION_TIMES,
                )
                await followup.wait()
                return outcomes, stats

        outcomes, stats = asyncio.run(run())
        assert isinstance(outcomes["poison"], WorkerCrashError)
        for name in corpus:
            assert not isinstance(outcomes[name], BaseException), name
        assert stats["failed"] == 1
        assert stats["executor_info"]["respawns"] >= 1
