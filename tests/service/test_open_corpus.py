"""open_corpus facade: dispatch, store-backed manifests, deprecated aliases."""

import json

import numpy as np
import pytest

from repro.corpus import LazySurface, build_store
from repro.service import (
    ManifestError,
    StoryManifest,
    load_manifest,
    open_corpus,
    parse_manifest,
    resolve_manifest,
)
from tests.corpus.test_store import make_surface

TRAINING = [1.0, 2.0, 3.0]


def inline_entry(name, surface):
    return {
        "name": name,
        "distances": surface.distances.tolist(),
        "times": surface.times.tolist(),
        "values": surface.values.tolist(),
    }


@pytest.fixture
def corpus():
    return {f"story-{i}": make_surface(i) for i in range(4)}


@pytest.fixture
def store(tmp_path, corpus):
    return build_store(tmp_path / "store", corpus, metric="hops", hours=6)


class TestDispatch:
    def test_payload(self, corpus):
        manifest = open_corpus(
            {"stories": [inline_entry("a", corpus["story-0"])]}
        )
        assert isinstance(manifest, StoryManifest)
        assert manifest.source == "<memory>"
        assert [s.name for s in manifest.stories] == ["a"]

    def test_manifest_file(self, tmp_path, corpus):
        path = tmp_path / "manifest.json"
        path.write_text(
            json.dumps({"stories": [inline_entry("a", corpus["story-0"])]})
        )
        manifest = open_corpus(path)
        assert manifest.source == str(path)
        assert [s.name for s in manifest.stories] == ["a"]

    def test_store_directory_and_index_path(self, store, corpus):
        for target in (store.root, store.root / "index.json", store):
            manifest = open_corpus(target)
            assert manifest.store == str(store.root)
            assert sorted(s.name for s in manifest.stories) == sorted(corpus)
            assert manifest.metric == "hops"
            assert manifest.hours == 6

    def test_index_saved_under_another_name(self, store, tmp_path):
        renamed = tmp_path / "catalog.json"
        renamed.write_text((store.root / "index.json").read_text())
        manifest = open_corpus(renamed)
        assert sorted(s.name for s in manifest.stories) == sorted(store.story_names)

    def test_directory_without_index_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ManifestError, match="not a corpus store"):
            open_corpus(tmp_path / "empty")

    def test_missing_path_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            open_corpus(tmp_path / "nope.json")

    def test_invalid_json_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ManifestError, match="not valid JSON"):
            open_corpus(bad)


class TestStoreBackedManifests:
    def test_explicit_story_subset_resolves_to_lazy_handles(self, store, corpus):
        manifest = open_corpus(
            {"store": str(store.root), "stories": ["story-1", "story-3"]}
        )
        resolved = manifest.resolve(training_times=TRAINING)
        assert sorted(resolved.surfaces) == ["story-1", "story-3"]
        for name, surface in resolved.surfaces.items():
            assert isinstance(surface, LazySurface)
            np.testing.assert_array_equal(
                surface.load().values, corpus[name].values
            )

    def test_omitted_stories_selects_every_store_story(self, store, corpus):
        resolved = open_corpus({"store": str(store.root)}).resolve()
        assert sorted(resolved.surfaces) == sorted(corpus)

    def test_store_and_corpus_blocks_are_mutually_exclusive(self, store):
        with pytest.raises(ManifestError, match="mutually exclusive"):
            open_corpus(
                {
                    "store": str(store.root),
                    "corpus": {"seed": 1},
                    "stories": ["story-0"],
                }
            )

    def test_dangling_store_reference(self, store):
        manifest = open_corpus({"store": str(store.root), "stories": ["ghost"]})
        with pytest.raises(
            ManifestError, match="'ghost', which is not in the corpus store"
        ):
            manifest.resolve()

    def test_corpus_overrides_rejected_for_store_manifests(self, store):
        manifest = open_corpus({"store": str(store.root), "stories": ["story-0"]})
        with pytest.raises(ManifestError, match="do not apply to a store-backed"):
            manifest.resolve(corpus_overrides={"seed": 42})

    def test_store_recorded_models_flow_into_resolution(self, tmp_path, corpus):
        store = build_store(
            tmp_path / "modeled",
            corpus,
            model="dl",
            models={"story-2": "logistic"},
        )
        resolved = open_corpus(store).resolve()
        assert resolved.default_model == "dl"
        assert resolved.models == {"story-2": "logistic"}
        assert resolved.model_for("story-2") == "logistic"
        assert resolved.model_for("story-0") == "dl"

    def test_unopenable_store_path_in_payload(self, tmp_path):
        manifest = open_corpus(
            {"store": str(tmp_path / "missing"), "stories": ["a"]}
        )
        with pytest.raises(ManifestError, match="cannot open the corpus store"):
            manifest.resolve()

    def test_training_window_validated_against_store_axes(self, store):
        manifest = open_corpus({"store": str(store.root), "stories": ["story-0"]})
        with pytest.raises(ManifestError, match="no observation at training hour"):
            manifest.resolve(training_times=[1.0, 99.0])


class TestErrorContext:
    def test_inline_errors_carry_source_index_and_name(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(
            json.dumps(
                {
                    "stories": [
                        {"name": "fine", "distances": [1], "times": [1], "values": [[1.0]]},
                        {"name": "bad", "distances": [1, 2], "times": [1], "values": [[1.0]]},
                    ]
                }
            )
        )
        with pytest.raises(ManifestError) as excinfo:
            open_corpus(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert "story #1" in message
        assert "'bad'" in message
        assert "'values'" in message

    def test_inline_group_sizes_and_unit_fields(self, corpus):
        entry = inline_entry("a", corpus["story-0"])
        entry["group_sizes"] = [2.0] * corpus["story-0"].distances.size
        entry["unit"] = "fraction"
        resolved = open_corpus({"stories": [entry]}).resolve()
        surface = resolved.surfaces["a"]
        assert surface.unit == "fraction"
        np.testing.assert_array_equal(
            surface.group_sizes, 2.0 * np.ones(corpus["story-0"].distances.size)
        )
        entry["group_sizes"] = [1.0]  # wrong length
        with pytest.raises(ManifestError, match="'group_sizes' has shape"):
            open_corpus({"stories": [entry]})
        entry["group_sizes"] = [2.0] * corpus["story-0"].distances.size
        entry["unit"] = "furlongs"
        with pytest.raises(ManifestError, match="'unit' must be one of"):
            open_corpus({"stories": [entry]})


class TestDeprecatedAliases:
    def test_parse_manifest_warns_and_delegates(self, corpus):
        payload = {"stories": [inline_entry("a", corpus["story-0"])]}
        with pytest.warns(DeprecationWarning, match="open_corpus"):
            manifest = parse_manifest(payload)
        assert [s.name for s in manifest.stories] == ["a"]

    def test_load_manifest_warns_and_delegates(self, tmp_path, corpus):
        path = tmp_path / "manifest.json"
        path.write_text(
            json.dumps({"stories": [inline_entry("a", corpus["story-0"])]})
        )
        with pytest.warns(DeprecationWarning, match="open_corpus"):
            manifest = load_manifest(str(path))
        assert [s.name for s in manifest.stories] == ["a"]

    def test_resolve_manifest_warns_and_delegates(self, corpus):
        payload = {"stories": [inline_entry("a", corpus["story-0"])]}
        manifest = open_corpus(payload)
        with pytest.warns(DeprecationWarning, match="StoryManifest.resolve"):
            resolved = resolve_manifest(manifest)
        assert sorted(resolved.surfaces) == ["a"]


class TestServiceEquivalence:
    """Lazy store handles must score bit-identically to inline surfaces."""

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_store_matches_inline_through_service(self, store, executor):
        from repro.core.config import SolverConfig
        from repro.core.parameters import PAPER_S1_HOP_PARAMETERS
        from repro.service import score_corpus_sync

        solver = SolverConfig(points_per_unit=4, max_step=0.25)
        training = [1.0, 2.0, 3.0]
        inline = open_corpus(store).resolve(training_times=training)
        lazy = open_corpus({"store": str(store.root)}).resolve(
            training_times=training
        )
        kwargs = dict(
            parameters=PAPER_S1_HOP_PARAMETERS,
            solver=solver,
            executor=executor,
            max_workers=2,
        )
        from repro.corpus import materialize_surface

        materialized = {
            name: materialize_surface(surface)
            for name, surface in inline.surfaces.items()
        }
        a = score_corpus_sync(materialized, training, **kwargs)
        b = score_corpus_sync(lazy.surfaces, training, **kwargs)
        assert sorted(a) == sorted(b)
        for name in a:
            assert a[name].overall_accuracy == b[name].overall_accuracy
            np.testing.assert_array_equal(
                a[name].predicted.values, b[name].predicted.values
            )
