"""Tests for the Independent Cascade and Linear Threshold graph baselines."""

import numpy as np
import pytest

from repro.baselines.independent_cascade import expected_spread, independent_cascade
from repro.baselines.linear_threshold import linear_threshold
from repro.network.graph import SocialGraph


class TestIndependentCascade:
    def test_probability_one_reaches_everything_reachable(self, line_graph):
        result = independent_cascade(line_graph, [0], activation_probability=1.0)
        assert result == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4, 5: 5}

    def test_probability_zero_stays_at_seeds(self, line_graph):
        result = independent_cascade(line_graph, [0], activation_probability=0.0)
        assert result == {0: 0}

    def test_rounds_are_bfs_levels_at_probability_one(self, triangle_graph):
        result = independent_cascade(triangle_graph, [0], activation_probability=1.0)
        assert result[0] == 0
        assert result[1] == 1
        assert result[2] == 1
        assert result[3] == 2

    def test_each_edge_gets_single_chance(self):
        """With p=0 on the only edge out of the seed, the cascade never grows
        even over many rounds (no re-tries)."""
        graph = SocialGraph.from_edges([(0, 1), (1, 2)])
        probabilities = {(0, 1): 0.0, (1, 2): 1.0}
        result = independent_cascade(graph, [0], probabilities, np.random.default_rng(0))
        assert result == {0: 0}

    def test_per_edge_probabilities(self):
        graph = SocialGraph.from_edges([(0, 1), (0, 2)])
        probabilities = {(0, 1): 1.0, (0, 2): 0.0}
        result = independent_cascade(graph, [0], probabilities, np.random.default_rng(0))
        assert 1 in result
        assert 2 not in result

    def test_max_rounds_cap(self, line_graph):
        result = independent_cascade(line_graph, [0], 1.0, max_rounds=2)
        assert max(result.values()) == 2

    def test_multiple_seeds(self, line_graph):
        result = independent_cascade(line_graph, [0, 3], activation_probability=1.0)
        assert result[4] == 1
        assert result[1] == 1

    def test_unknown_seed(self, line_graph):
        with pytest.raises(KeyError):
            independent_cascade(line_graph, [99], 0.5)

    def test_deterministic_given_rng(self, small_graph):
        hub = max(small_graph.users(), key=small_graph.out_degree)
        first = independent_cascade(small_graph, [hub], 0.3, np.random.default_rng(5))
        second = independent_cascade(small_graph, [hub], 0.3, np.random.default_rng(5))
        assert first == second

    def test_higher_probability_spreads_further(self, small_graph):
        hub = max(small_graph.users(), key=small_graph.out_degree)
        low = independent_cascade(small_graph, [hub], 0.05, np.random.default_rng(1))
        high = independent_cascade(small_graph, [hub], 0.5, np.random.default_rng(1))
        assert len(high) > len(low)


class TestExpectedSpread:
    def test_bounds(self, small_graph):
        hub = max(small_graph.users(), key=small_graph.out_degree)
        spread = expected_spread(small_graph, [hub], 0.2, num_samples=10)
        assert 1.0 <= spread <= small_graph.num_users

    def test_monotone_in_probability(self, small_graph):
        hub = max(small_graph.users(), key=small_graph.out_degree)
        low = expected_spread(small_graph, [hub], 0.05, num_samples=15, rng=np.random.default_rng(2))
        high = expected_spread(small_graph, [hub], 0.6, num_samples=15, rng=np.random.default_rng(2))
        assert high > low

    def test_requires_samples(self, small_graph):
        with pytest.raises(ValueError):
            expected_spread(small_graph, [0], 0.1, num_samples=0)


class TestLinearThreshold:
    def test_zero_thresholds_spread_everywhere_reachable(self, line_graph):
        thresholds = {user: 0.0 for user in line_graph.users()}
        result = linear_threshold(line_graph, [0], thresholds=thresholds)
        assert set(result) == set(range(6))

    def test_high_thresholds_block_spread(self, line_graph):
        thresholds = {user: 1.0 for user in line_graph.users()}
        # Each user has in-degree 1, so incoming weight is exactly 1.0 >= 1.0:
        # activation still happens; use a value just above 1 via weights.
        weights = {(u, u + 1): 0.5 for u in range(5)}
        result = linear_threshold(line_graph, [0], influence_weights=weights, thresholds=thresholds)
        assert result == {0: 0}

    def test_default_weights_are_one_over_in_degree(self, triangle_graph):
        # Users 1 and 2 each follow two users, so one active followee carries
        # weight 0.5; user 3 follows only user 2, so once 2 is active the
        # incoming weight is 1.0 and even a 0.99 threshold activates it.
        thresholds = {0: 0.5, 1: 0.45, 2: 0.45, 3: 0.99}
        result = linear_threshold(triangle_graph, [0], thresholds=thresholds)
        assert 1 in result and 2 in result
        assert 3 in result
        # With a threshold just above 0.5 at user 2, a single active followee
        # is no longer enough in round one.
        blocked = linear_threshold(
            triangle_graph, [0], thresholds={0: 0.5, 1: 0.99, 2: 0.55, 3: 0.99}, max_rounds=1
        )
        assert 2 not in blocked

    def test_rounds_increase_along_chain(self, line_graph):
        thresholds = {user: 0.5 for user in line_graph.users()}
        result = linear_threshold(line_graph, [0], thresholds=thresholds)
        assert [result[u] for u in range(6)] == [0, 1, 2, 3, 4, 5]

    def test_max_rounds(self, line_graph):
        thresholds = {user: 0.0 for user in line_graph.users()}
        result = linear_threshold(line_graph, [0], thresholds=thresholds, max_rounds=3)
        assert max(result.values()) == 3

    def test_invalid_threshold_rejected(self, line_graph):
        with pytest.raises(ValueError):
            linear_threshold(line_graph, [0], thresholds={1: 1.5})

    def test_unknown_seed(self, line_graph):
        with pytest.raises(KeyError):
            linear_threshold(line_graph, [77])

    def test_deterministic_with_seeded_rng(self, small_graph):
        hub = max(small_graph.users(), key=small_graph.out_degree)
        first = linear_threshold(small_graph, [hub], rng=np.random.default_rng(9))
        second = linear_threshold(small_graph, [hub], rng=np.random.default_rng(9))
        assert first == second

    def test_accumulated_influence_triggers_activation(self):
        """A user following two seeds activates when the combined weight
        crosses the threshold even though each single edge would not."""
        graph = SocialGraph.from_edges([(0, 2), (1, 2)])
        weights = {(0, 2): 0.4, (1, 2): 0.4}
        result = linear_threshold(graph, [0, 1], influence_weights=weights, thresholds={2: 0.7})
        assert 2 in result
        blocked = linear_threshold(graph, [0], influence_weights=weights, thresholds={2: 0.7})
        assert 2 not in blocked
