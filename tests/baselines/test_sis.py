"""Tests for the SIS epidemic baseline."""

import numpy as np
import pytest

from repro.baselines.sis import SISBaseline, SISParameters, simulate_sis
from repro.cascade.density import DensitySurface


class TestSISParameters:
    def test_reproduction_number(self):
        assert SISParameters(0.6, 0.2).basic_reproduction_number == pytest.approx(3.0)
        assert SISParameters(0.6, 0.0).basic_reproduction_number == float("inf")

    def test_endemic_level(self):
        assert SISParameters(0.6, 0.2).endemic_level == pytest.approx(2.0 / 3.0)
        assert SISParameters(0.1, 0.5).endemic_level == 0.0
        assert SISParameters(0.0, 0.5).endemic_level == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SISParameters(-0.1, 0.2)
        with pytest.raises(ValueError):
            SISParameters(0.1, -0.2)


class TestSimulateSIS:
    def test_zero_initial_stays_zero(self):
        values = simulate_sis(0.0, [0.0, 5.0, 10.0], SISParameters(0.5, 0.1))
        assert np.allclose(values, 0.0)

    def test_converges_to_endemic_level(self):
        params = SISParameters(1.0, 0.25)
        values = simulate_sis(0.05, [0.0, 100.0], params)
        assert values[-1] == pytest.approx(params.endemic_level, abs=1e-3)

    def test_dies_out_below_threshold(self):
        params = SISParameters(0.2, 0.8)  # R0 < 1
        values = simulate_sis(0.3, [0.0, 200.0], params)
        assert values[-1] == pytest.approx(0.0, abs=1e-3)

    def test_stays_in_unit_interval(self):
        values = simulate_sis(0.9, np.linspace(0, 50, 100), SISParameters(2.0, 0.1))
        assert np.all(values >= 0.0)
        assert np.all(values <= 1.0)

    def test_rejects_bad_initial_fraction(self):
        with pytest.raises(ValueError):
            simulate_sis(1.5, [0.0, 1.0], SISParameters(0.5, 0.1))


class TestSISBaseline:
    def _surface(self):
        times = np.arange(1.0, 9.0)
        params = SISParameters(0.9, 0.05)
        series_a = simulate_sis(0.05, times, params) * 100.0
        series_b = simulate_sis(0.02, times, params) * 100.0
        values = np.column_stack([series_a, series_b])
        return DensitySurface([1, 2], times, values, [1, 1])

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            SISBaseline().predict([2.0])

    def test_round_trip_on_sis_generated_data(self):
        surface = self._surface()
        baseline = SISBaseline(pool_percent=100.0).fit(surface, training_times=range(1, 7))
        predicted = baseline.predict([7.0, 8.0])
        for t in (7.0, 8.0):
            assert np.allclose(predicted.profile(t), surface.profile(t), rtol=0.15, atol=0.5)

    def test_zero_initial_group_predicts_zero(self):
        times = np.arange(1.0, 7.0)
        values = np.column_stack([np.linspace(5, 10, 6), np.zeros(6)])
        surface = DensitySurface([1, 2], times, values, [1, 1])
        baseline = SISBaseline().fit(surface)
        assert baseline.predict([10.0]).density(2, 10.0) == 0.0

    def test_rejects_bad_pool(self):
        with pytest.raises(ValueError):
            SISBaseline(pool_percent=0.0)

    def test_predictions_bounded_by_pool(self, s1_hop_surface):
        baseline = SISBaseline(pool_percent=50.0).fit(s1_hop_surface)
        predicted = baseline.predict([10.0, 30.0])
        assert np.all(predicted.values <= 50.0 + 1e-6)
        assert np.all(predicted.values >= 0.0)
