"""Tests for the per-distance independent logistic baseline."""

import numpy as np
import pytest

from repro.baselines.logistic import PerDistanceLogisticBaseline
from repro.cascade.density import DensitySurface
from repro.numerics.ode import LogisticCurve


def logistic_surface(hours=12):
    """Each distance follows its own exact logistic curve."""
    times = np.arange(1.0, hours + 1.0)
    curves = [
        LogisticCurve(0.8, 20.0, 4.0, initial_time=1.0),
        LogisticCurve(0.6, 10.0, 2.0, initial_time=1.0),
        LogisticCurve(0.4, 6.0, 1.0, initial_time=1.0),
    ]
    values = np.column_stack([np.asarray(curve(times)) for curve in curves])
    return DensitySurface([1, 2, 3], times, values, [1, 1, 1])


class TestFit:
    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            PerDistanceLogisticBaseline().predict([2.0])

    def test_fitted_distances(self):
        baseline = PerDistanceLogisticBaseline().fit(logistic_surface())
        assert baseline.fitted_distances == [1.0, 2.0, 3.0]

    def test_recovers_exact_logistic_series(self):
        surface = logistic_surface()
        baseline = PerDistanceLogisticBaseline().fit(surface, training_times=range(1, 7))
        predicted = baseline.predict([8.0, 10.0, 12.0])
        for t in (8.0, 10.0, 12.0):
            assert np.allclose(predicted.profile(t), surface.profile(t), rtol=0.05)

    def test_zero_series_falls_back_to_constant(self):
        times = np.arange(1.0, 7.0)
        values = np.column_stack([np.linspace(1, 5, 6), np.zeros(6)])
        surface = DensitySurface([1, 2], times, values, [1, 1])
        baseline = PerDistanceLogisticBaseline().fit(surface)
        predicted = baseline.predict([10.0])
        assert predicted.density(2, 10.0) == 0.0

    def test_capacity_cap_respected(self):
        surface = logistic_surface()
        baseline = PerDistanceLogisticBaseline(carrying_capacity_cap=30.0).fit(surface)
        predicted = baseline.predict([100.0])
        assert np.all(predicted.values <= 30.0 + 1e-6)

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            PerDistanceLogisticBaseline(carrying_capacity_cap=0.0)

    def test_predictions_non_negative_and_unit_preserved(self):
        surface = logistic_surface()
        baseline = PerDistanceLogisticBaseline().fit(surface)
        predicted = baseline.predict([3.0, 20.0])
        assert np.all(predicted.values >= 0.0)
        assert predicted.unit == surface.unit

    def test_works_on_synthetic_corpus_surface(self, s1_hop_surface):
        baseline = PerDistanceLogisticBaseline().fit(s1_hop_surface)
        predicted = baseline.predict([2.0, 4.0, 6.0])
        assert predicted.values.shape == (3, 5)
        assert np.all(np.isfinite(predicted.values))


class TestBatchedFitEquivalence:
    def test_joint_fit_matches_independent_fits(self):
        """The vectorised joint fit finds the same per-distance optima."""
        from repro.numerics.ode import fit_logistic_curve

        surface = logistic_surface()
        training_times = [float(t) for t in range(1, 7)]
        baseline = PerDistanceLogisticBaseline().fit(surface, training_times=training_times)
        training = surface.restrict_times(training_times)
        for j, fit in enumerate(baseline._fits):
            independent = fit_logistic_curve(training.times, training.values[:, j])
            assert fit.curve is not None
            assert fit.curve.growth_rate == pytest.approx(
                independent.growth_rate, rel=1e-2
            )
            assert fit.curve.carrying_capacity == pytest.approx(
                independent.carrying_capacity, rel=1e-2
            )

    def test_batched_predict_matches_per_curve_evaluation(self):
        surface = logistic_surface()
        baseline = PerDistanceLogisticBaseline().fit(surface)
        times = [7.0, 9.0, 11.0]
        predicted = baseline.predict(times)
        for j, fit in enumerate(baseline._fits):
            expected = np.asarray(fit.curve(np.asarray(times)))
            assert np.allclose(predicted.values[:, j], np.maximum(expected, 0.0), rtol=1e-12)
