"""Tests for the Linear-Influence-style counting baseline."""

import numpy as np
import pytest

from repro.baselines.linear_influence import LinearInfluenceBaseline
from repro.cascade.density import DensitySurface


def linear_growth_surface(hours=10):
    """Each distance grows by a constant increment per hour (an AR(1) fixed point)."""
    times = np.arange(1.0, hours + 1.0)
    increments = np.array([2.0, 1.0, 0.5])
    values = np.outer(times - 1.0, increments) + np.array([1.0, 0.5, 0.2])
    return DensitySurface([1, 2, 3], times, values, [1, 1, 1])


class TestFit:
    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            LinearInfluenceBaseline().predict([2.0])

    def test_needs_three_training_times(self):
        surface = linear_growth_surface()
        with pytest.raises(ValueError):
            LinearInfluenceBaseline().fit(surface, training_times=[1.0, 2.0])

    def test_influence_matrix_shape_and_nonnegativity(self):
        baseline = LinearInfluenceBaseline().fit(linear_growth_surface())
        matrix = baseline.influence_matrix
        assert matrix.shape == (3, 3)
        assert np.all(matrix >= 0.0)

    def test_rejects_negative_ridge(self):
        with pytest.raises(ValueError):
            LinearInfluenceBaseline(ridge=-1.0)


class TestPredict:
    def test_extrapolates_constant_increments(self):
        surface = linear_growth_surface()
        baseline = LinearInfluenceBaseline(ridge=1e-6).fit(surface, training_times=range(1, 7))
        predicted = baseline.predict([8.0, 10.0])
        for t in (8.0, 10.0):
            assert np.allclose(predicted.profile(t), surface.profile(t), rtol=0.1)

    def test_prediction_monotone_when_increments_positive(self):
        surface = linear_growth_surface()
        baseline = LinearInfluenceBaseline().fit(surface)
        predicted = baseline.predict([11.0, 12.0, 13.0])
        assert np.all(np.diff(predicted.values, axis=0) >= -1e-9)

    def test_time_at_or_before_training_returns_last_profile(self):
        surface = linear_growth_surface()
        baseline = LinearInfluenceBaseline().fit(surface, training_times=range(1, 7))
        predicted = baseline.predict([6.0])
        assert np.allclose(predicted.profile(6.0), surface.profile(6.0))

    def test_no_saturation_mechanism(self):
        """Unlike the DL model, the linear-influence baseline keeps growing --
        the structural weakness the ablation benchmark exposes."""
        surface = linear_growth_surface()
        baseline = LinearInfluenceBaseline(ridge=1e-6).fit(surface)
        far_future = baseline.predict([60.0])
        assert far_future.density(1, 60.0) > 2 * surface.max_density

    def test_works_on_synthetic_corpus_surface(self, s1_hop_surface):
        baseline = LinearInfluenceBaseline().fit(s1_hop_surface)
        predicted = baseline.predict([7.0, 8.0])
        assert predicted.values.shape == (2, 5)
        assert np.all(np.isfinite(predicted.values))
        assert np.all(predicted.values >= 0.0)
