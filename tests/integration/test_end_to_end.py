"""Integration tests: the full pipeline from graph generation to accuracy tables.

These mirror the paper's workflow end to end on the small test corpus:
build the corpus -> extract density surfaces -> construct phi -> calibrate ->
predict -> score, plus cross-cutting checks (serialization round trips feeding
the same pipeline, alternative cascade mechanisms feeding the DL model).
"""

import numpy as np

from repro.baselines.independent_cascade import independent_cascade
from repro.cascade.dataset import CascadeDataset
from repro.cascade.density import compute_density_surface
from repro.cascade.events import Story, Vote
from repro.core.accuracy import build_accuracy_table
from repro.core.initial_density import InitialDensity
from repro.core.prediction import DiffusionPredictor
from repro.core.properties import check_solution_bounds, check_strictly_increasing
from repro.network.distance import friendship_hop_distances


class TestPaperWorkflow:
    """The Section III-C protocol on the synthetic corpus."""

    def test_hop_distance_pipeline(self, small_corpus):
        observed = small_corpus.hop_density_surface("s1")
        predictor = DiffusionPredictor().fit(observed, training_times=range(1, 7))
        result = predictor.evaluate(observed)

        assert result.overall_accuracy > 0.6
        assert result.accuracy_table.accuracies.shape == (5, 5)
        assert check_solution_bounds(result.solution)
        assert check_strictly_increasing(result.solution)
        # phi requirements (Section II-D) hold for the fitted setup.
        report = result.initial_density.lower_solution_report(result.parameters)
        assert report.satisfied

    def test_interest_distance_pipeline(self, small_corpus):
        observed = small_corpus.interest_density_surface("s1")
        predictor = DiffusionPredictor().fit(observed, training_times=range(1, 7))
        result = predictor.evaluate(observed)
        assert result.overall_accuracy > 0.5
        assert result.predicted.values.shape == result.actual.values.shape

    def test_second_story_can_reuse_the_pipeline(self, small_corpus):
        observed = small_corpus.hop_density_surface("s2")
        # On the small test corpus the s2 cascade starts slowly; anchor phi at
        # the first hour with a non-zero snapshot, as a practitioner would.
        start = next(
            float(t) for t in observed.times if observed.profile(float(t)).sum() > 0
        )
        training = [start + offset for offset in range(6)]
        predictor = DiffusionPredictor().fit(observed, training_times=training)
        result = predictor.evaluate(observed, times=training[1:])
        assert np.all(np.isfinite(result.predicted.values))


class TestSerializationRoundTripPipeline:
    def test_saved_corpus_produces_identical_densities(self, small_corpus, tmp_path):
        path = tmp_path / "corpus.json"
        small_corpus.dataset.save(path)
        reloaded = CascadeDataset.load(path)

        story = small_corpus.story("s1")
        reloaded_story = reloaded.story(story.story_id)
        distances = friendship_hop_distances(reloaded.graph, story.initiator)

        original = small_corpus.hop_density_surface("s1")
        recomputed = compute_density_surface(
            reloaded_story, distances, [1, 2, 3, 4, 5], times=original.times
        )
        assert np.allclose(original.values, recomputed.values)


class TestAlternativeCascadeMechanism:
    """The DL model consumes densities regardless of the generating process;
    feed it an Independent Cascade run to prove it is not tied to the
    simulator in repro.cascade.simulator."""

    def test_dl_fits_independent_cascade_data(self, small_graph):
        hub = max(small_graph.users(), key=small_graph.out_degree)
        activation = independent_cascade(
            small_graph, [hub], activation_probability=0.35, rng=np.random.default_rng(17)
        )
        # Interpret IC rounds as hours 0, 1, 2, ... and build a story.
        votes = [Vote(float(r), user) for user, r in activation.items()]
        story = Story(story_id=0, initiator=hub, votes=votes)
        distances = friendship_hop_distances(small_graph, hub)
        max_distance = min(4, max(distances.values()))
        times = np.arange(1.0, 11.0)
        surface = compute_density_surface(
            story, distances, range(1, max_distance + 1), times=times
        )

        predictor = DiffusionPredictor().fit(surface, training_times=[1.0, 2.0, 3.0, 4.0])
        result = predictor.evaluate(surface, times=[5.0, 6.0])
        assert np.all(np.isfinite(result.predicted.values))
        assert result.diagnostics["bounds_ok"]


class TestManualPhiPipeline:
    """Build phi by hand from the paper's published parameter set and verify the
    whole modelling stack stays consistent with the accuracy machinery."""

    def test_paper_parameters_on_synthetic_observations(self, s1_hop_surface):
        phi = InitialDensity.from_surface(s1_hop_surface)
        predictor = DiffusionPredictor()
        predictor._configured_parameters = None  # exercise calibration path
        predictor.fit(s1_hop_surface, training_times=[1, 2, 3, 4, 5, 6])
        predicted = predictor.predict([2.0, 4.0, 6.0])
        actual = s1_hop_surface.restrict_times([2.0, 4.0, 6.0])
        table = build_accuracy_table(predicted, actual, times=[2.0, 4.0, 6.0])
        assert table.accuracies.shape == (5, 3)
        assert table.overall_average > 0.5
        assert np.allclose(phi.densities, s1_hop_surface.initial_profile())
