"""Tests for the top-level public API surface of the package."""

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} is exported but missing"

    def test_core_entry_points_exposed(self):
        assert callable(repro.DiffusiveLogisticModel)
        assert callable(repro.DiffusionPredictor)
        assert callable(repro.build_synthetic_digg_dataset)
        assert callable(repro.generate_digg_like_graph)

    def test_paper_parameters_exposed(self):
        assert repro.PAPER_S1_HOP_PARAMETERS.carrying_capacity == 25.0
        assert repro.PAPER_S1_INTEREST_PARAMETERS.carrying_capacity == 60.0

    def test_quickstart_surface(self, small_corpus):
        """The README quickstart sequence works against the public names only."""
        observed = small_corpus.hop_density_surface("s1")
        predictor = repro.DiffusionPredictor(parameters=repro.PAPER_S1_HOP_PARAMETERS)
        predictor.fit(observed)
        result = predictor.evaluate(observed, times=[2.0, 3.0])
        assert 0.0 <= result.overall_accuracy <= 1.0

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.baselines
        import repro.cascade
        import repro.core
        import repro.io
        import repro.network
        import repro.numerics

        assert repro.core is not None
