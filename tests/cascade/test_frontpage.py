"""Tests for the front-page promotion model."""

import numpy as np
import pytest

from repro.cascade.frontpage import FrontPageModel


class TestValidation:
    def test_defaults_valid(self):
        FrontPageModel()

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            FrontPageModel(promotion_threshold=-1)
        with pytest.raises(ValueError):
            FrontPageModel(discovery_rate=-1.0)
        with pytest.raises(ValueError):
            FrontPageModel(staleness_decay=-0.1)


class TestPromotion:
    def test_threshold(self):
        model = FrontPageModel(promotion_threshold=10)
        assert not model.is_promoted(9)
        assert model.is_promoted(10)
        assert model.is_promoted(100)

    def test_zero_threshold_promotes_immediately(self):
        assert FrontPageModel(promotion_threshold=0).is_promoted(0)


class TestDiscoveryIntensity:
    def test_initial_intensity_equals_rate(self):
        model = FrontPageModel(discovery_rate=40.0, staleness_decay=0.2)
        assert model.discovery_intensity(0.0) == pytest.approx(40.0)

    def test_decays_exponentially(self):
        model = FrontPageModel(discovery_rate=40.0, staleness_decay=0.2)
        assert model.discovery_intensity(5.0) == pytest.approx(40.0 * np.exp(-1.0))

    def test_negative_age_gives_zero(self):
        model = FrontPageModel(discovery_rate=40.0)
        assert model.discovery_intensity(-1.0) == 0.0


class TestExpectedDiscoveries:
    def test_integral_matches_intensity(self):
        model = FrontPageModel(discovery_rate=30.0, staleness_decay=0.5)
        # Numerical integral of the intensity over [2, 3].
        ages = np.linspace(2.0, 3.0, 2001)
        numeric = np.trapezoid([model.discovery_intensity(a) for a in ages], ages)
        assert model.expected_discoveries(2.0, 1.0) == pytest.approx(numeric, rel=1e-5)

    def test_total_discoveries_converges_to_rate_over_decay(self):
        model = FrontPageModel(discovery_rate=30.0, staleness_decay=0.5)
        assert model.expected_discoveries(0.0, 1000.0) == pytest.approx(60.0, rel=1e-6)

    def test_zero_decay_is_linear(self):
        model = FrontPageModel(discovery_rate=10.0, staleness_decay=0.0)
        assert model.expected_discoveries(5.0, 2.0) == pytest.approx(20.0)

    def test_zero_or_negative_dt(self):
        model = FrontPageModel(discovery_rate=10.0)
        assert model.expected_discoveries(1.0, 0.0) == 0.0
        assert model.expected_discoveries(1.0, -1.0) == 0.0

    def test_additivity_over_subintervals(self):
        model = FrontPageModel(discovery_rate=25.0, staleness_decay=0.3)
        whole = model.expected_discoveries(1.0, 2.0)
        split = model.expected_discoveries(1.0, 0.7) + model.expected_discoveries(1.7, 1.3)
        assert whole == pytest.approx(split, rel=1e-9)
