"""Tests for the stochastic cascade simulator."""

import numpy as np
import pytest

from repro.cascade.frontpage import FrontPageModel
from repro.cascade.simulator import CascadeConfig, CascadeSimulator
from repro.network.generators import DiggLikeGraphConfig, generate_digg_like_graph


@pytest.fixture(scope="module")
def sim_graph():
    config = DiggLikeGraphConfig(
        num_users=300,
        initial_core=5,
        follows_per_user=2,
        reciprocity_probability=0.3,
        triadic_closure_probability=0.15,
        preferential_fraction=0.5,
        recent_window=15,
        seed=11,
    )
    return generate_digg_like_graph(config)


def default_config(**overrides):
    defaults = dict(
        follow_hazard=0.08,
        reinforcement=0.3,
        interest_decay=0.2,
        front_page=FrontPageModel(promotion_threshold=5, discovery_rate=5.0, staleness_decay=0.3),
        horizon_hours=24.0,
        time_step=0.5,
    )
    defaults.update(overrides)
    return CascadeConfig(**defaults)


class TestConfigValidation:
    def test_defaults(self):
        CascadeConfig()

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            CascadeConfig(follow_hazard=-0.1)
        with pytest.raises(ValueError):
            CascadeConfig(reinforcement=-0.1)
        with pytest.raises(ValueError):
            CascadeConfig(interest_decay=-0.1)

    def test_rejects_bad_horizon_and_step(self):
        with pytest.raises(ValueError):
            CascadeConfig(horizon_hours=0.0)
        with pytest.raises(ValueError):
            CascadeConfig(time_step=0.0)
        with pytest.raises(ValueError):
            CascadeConfig(horizon_hours=1.0, time_step=2.0)


class TestSimulation:
    def test_initiator_votes_at_time_zero(self, sim_graph):
        simulator = CascadeSimulator(sim_graph, default_config())
        hub = max(sim_graph.users(), key=sim_graph.out_degree)
        story = simulator.simulate(0, hub, np.random.default_rng(1))
        assert story.votes[0].time == 0.0
        assert story.votes[0].user == hub

    def test_no_duplicate_voters(self, sim_graph):
        simulator = CascadeSimulator(sim_graph, default_config())
        hub = max(sim_graph.users(), key=sim_graph.out_degree)
        story = simulator.simulate(0, hub, np.random.default_rng(2))
        voters = [vote.user for vote in story.votes]
        assert len(voters) == len(set(voters))

    def test_votes_within_horizon_and_sorted(self, sim_graph):
        config = default_config(horizon_hours=12.0)
        simulator = CascadeSimulator(sim_graph, config)
        hub = max(sim_graph.users(), key=sim_graph.out_degree)
        story = simulator.simulate(0, hub, np.random.default_rng(3))
        times = story.vote_times()
        assert times == sorted(times)
        assert max(times) <= 12.0 + 1e-9

    def test_deterministic_given_rng_seed(self, sim_graph):
        simulator = CascadeSimulator(sim_graph, default_config())
        hub = max(sim_graph.users(), key=sim_graph.out_degree)
        first = simulator.simulate(0, hub, np.random.default_rng(42))
        second = simulator.simulate(0, hub, np.random.default_rng(42))
        assert [(v.time, v.user) for v in first.votes] == [(v.time, v.user) for v in second.votes]

    def test_unknown_initiator_rejected(self, sim_graph):
        simulator = CascadeSimulator(sim_graph, default_config())
        with pytest.raises(KeyError):
            simulator.simulate(0, 10_000, np.random.default_rng(0))

    def test_zero_hazard_no_front_page_gives_lone_vote(self, sim_graph):
        config = default_config(
            follow_hazard=0.0,
            front_page=FrontPageModel(promotion_threshold=1000, discovery_rate=0.0),
        )
        simulator = CascadeSimulator(sim_graph, config)
        hub = max(sim_graph.users(), key=sim_graph.out_degree)
        story = simulator.simulate(0, hub, np.random.default_rng(5))
        assert story.num_votes == 1

    def test_higher_hazard_produces_bigger_cascades(self, sim_graph):
        hub = max(sim_graph.users(), key=sim_graph.out_degree)
        small = CascadeSimulator(sim_graph, default_config(follow_hazard=0.01)).simulate(
            0, hub, np.random.default_rng(6)
        )
        large = CascadeSimulator(sim_graph, default_config(follow_hazard=0.25)).simulate(
            0, hub, np.random.default_rng(6)
        )
        assert large.num_votes > small.num_votes

    def test_front_page_lets_disconnected_users_vote(self):
        """Users unreachable through follower links can still vote once the
        story is promoted -- the paper's random-walk channel."""
        from repro.network.graph import SocialGraph

        graph = SocialGraph(50)
        # Only a tiny follower component around the initiator.
        graph.add_follow(0, 1)
        graph.add_follow(0, 2)
        config = default_config(
            follow_hazard=2.0,
            front_page=FrontPageModel(promotion_threshold=2, discovery_rate=20.0, staleness_decay=0.1),
        )
        story = CascadeSimulator(graph, config).simulate(0, 0, np.random.default_rng(7))
        reachable = {0, 1, 2}
        assert any(vote.user not in reachable for vote in story.votes)

    def test_discovery_bias_changes_who_votes(self, sim_graph):
        """A strong bias toward a target set should raise that set's share."""
        hub = max(sim_graph.users(), key=sim_graph.out_degree)
        config = default_config(
            follow_hazard=0.0,
            front_page=FrontPageModel(promotion_threshold=1, discovery_rate=8.0, staleness_decay=0.3),
        )
        simulator = CascadeSimulator(sim_graph, config)
        favoured = set(list(sim_graph.users())[:100]) - {hub}
        bias = {user: (50.0 if user in favoured else 0.1) for user in sim_graph.users()}
        story = simulator.simulate(0, hub, np.random.default_rng(8), discovery_bias=bias)
        voters = story.voters - {hub}
        assert len(voters) > 5
        share = len(voters & favoured) / len(voters)
        assert share > 0.8

    def test_negative_discovery_bias_rejected(self, sim_graph):
        simulator = CascadeSimulator(sim_graph, default_config())
        hub = max(sim_graph.users(), key=sim_graph.out_degree)
        with pytest.raises(ValueError):
            simulator.simulate(0, hub, np.random.default_rng(9), discovery_bias={hub: -1.0})

    def test_cumulative_votes_monotone_in_time(self, sim_graph):
        simulator = CascadeSimulator(sim_graph, default_config())
        hub = max(sim_graph.users(), key=sim_graph.out_degree)
        story = simulator.simulate(0, hub, np.random.default_rng(10))
        counts = [len(story.votes_until(t)) for t in range(0, 25)]
        assert counts == sorted(counts)

    def test_accessors(self, sim_graph):
        config = default_config()
        simulator = CascadeSimulator(sim_graph, config)
        assert simulator.graph is sim_graph
        assert simulator.config is config
