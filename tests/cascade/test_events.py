"""Tests for Vote and Story record types."""

import pytest

from repro.cascade.events import Story, Vote


class TestVote:
    def test_fields(self):
        vote = Vote(time=1.5, user=42)
        assert vote.time == 1.5
        assert vote.user == 42

    def test_ordering_by_time(self):
        assert Vote(1.0, 5) < Vote(2.0, 1)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            Vote(time=-0.1, user=1)

    def test_rejects_negative_user(self):
        with pytest.raises(ValueError):
            Vote(time=0.0, user=-1)

    def test_is_hashable_and_frozen(self):
        vote = Vote(1.0, 2)
        assert hash(vote) == hash(Vote(1.0, 2))
        with pytest.raises(AttributeError):
            vote.time = 5.0


class TestStory:
    def _story(self):
        votes = [Vote(0.0, 0), Vote(2.0, 2), Vote(1.0, 1), Vote(3.0, 1)]
        return Story(story_id=7, initiator=0, votes=votes)

    def test_votes_sorted_on_construction(self):
        story = self._story()
        assert [v.time for v in story.votes] == [0.0, 1.0, 2.0, 3.0]

    def test_num_votes_and_voters(self):
        story = self._story()
        assert story.num_votes == 4
        assert story.voters == {0, 1, 2}

    def test_add_vote_keeps_sorted(self):
        story = self._story()
        story.add_vote(Vote(0.5, 9))
        assert [v.time for v in story.votes] == [0.0, 0.5, 1.0, 2.0, 3.0]

    def test_votes_until(self):
        story = self._story()
        assert len(story.votes_until(1.0)) == 2
        assert story.voters_until(1.0) == {0, 1}
        assert story.voters_until(0.0) == {0}

    def test_first_vote_time(self):
        story = self._story()
        assert story.first_vote_time(1) == 1.0
        assert story.first_vote_time(99) is None

    def test_vote_times(self):
        assert self._story().vote_times() == [0.0, 1.0, 2.0, 3.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            Story(story_id=-1, initiator=0)
        with pytest.raises(ValueError):
            Story(story_id=0, initiator=-2)
