"""Tests for density-surface extraction and the DensitySurface type."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cascade.density import DensitySurface, compute_density_surface
from repro.cascade.events import Story, Vote


def simple_story():
    """5 users at distance 1, 10 at distance 2; a hand-checkable vote pattern."""
    votes = [
        Vote(0.0, 0),       # initiator (distance not assigned)
        Vote(0.5, 1),       # distance 1
        Vote(1.5, 2),       # distance 1
        Vote(1.5, 10),      # distance 2
        Vote(2.5, 11),      # distance 2
        Vote(2.5, 12),      # distance 2
        Vote(40.0, 3),      # distance 1
    ]
    return Story(story_id=1, initiator=0, votes=votes)


def simple_distances():
    distances = {user: 1 for user in range(1, 6)}
    distances.update({user: 2 for user in range(10, 20)})
    return distances


class TestComputeDensitySurface:
    def test_hand_computed_values(self):
        surface = compute_density_surface(
            simple_story(), simple_distances(), [1, 2], times=[1.0, 2.0, 3.0, 50.0]
        )
        # Hour 1: one voter of 5 at distance 1 -> 20%; none of 10 at distance 2.
        assert surface.density(1, 1.0) == pytest.approx(20.0)
        assert surface.density(2, 1.0) == pytest.approx(0.0)
        # Hour 2: two of 5 -> 40%; one of 10 -> 10%.
        assert surface.density(1, 2.0) == pytest.approx(40.0)
        assert surface.density(2, 2.0) == pytest.approx(10.0)
        # Hour 3: 40% and 30%.
        assert surface.density(2, 3.0) == pytest.approx(30.0)
        # Hour 50: the late vote at distance 1 arrives -> 60%.
        assert surface.density(1, 50.0) == pytest.approx(60.0)

    def test_fraction_unit(self):
        surface = compute_density_surface(
            simple_story(), simple_distances(), [1, 2], times=[2.0], unit="fraction"
        )
        assert surface.density(1, 2.0) == pytest.approx(0.4)

    def test_unknown_users_ignored(self):
        story = simple_story()
        story.add_vote(Vote(1.0, 999))  # not in the distance map
        surface = compute_density_surface(story, simple_distances(), [1, 2], times=[2.0])
        assert surface.density(1, 2.0) == pytest.approx(40.0)

    def test_group_sizes_recorded(self):
        surface = compute_density_surface(simple_story(), simple_distances(), [1, 2], times=[1.0])
        assert list(surface.group_sizes) == [5, 10]

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            compute_density_surface(simple_story(), simple_distances(), [1, 2, 3], times=[1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            compute_density_surface(simple_story(), simple_distances(), [], times=[1.0])
        with pytest.raises(ValueError):
            compute_density_surface(simple_story(), simple_distances(), [1], times=[])
        with pytest.raises(ValueError):
            compute_density_surface(simple_story(), simple_distances(), [1], times=[1.0], unit="pct")

    def test_metadata_merged(self):
        surface = compute_density_surface(
            simple_story(), simple_distances(), [1, 2], times=[1.0], metadata={"story": "s1"}
        )
        assert surface.metadata["story"] == "s1"
        assert surface.metadata["story_id"] == 1

    def test_duplicate_votes_counted_once(self):
        votes = [Vote(0.0, 0), Vote(1.0, 1), Vote(2.0, 1)]
        story = Story(story_id=2, initiator=0, votes=votes)
        surface = compute_density_surface(story, {1: 1, 2: 1}, [1], times=[3.0])
        assert surface.density(1, 3.0) == pytest.approx(50.0)


class TestDensitySurfaceType:
    def _surface(self):
        return DensitySurface(
            distances=[1, 2, 3],
            times=[1.0, 2.0, 3.0],
            values=np.array([[1.0, 0.5, 0.2], [2.0, 1.0, 0.4], [3.0, 1.5, 0.6]]),
            group_sizes=[10, 20, 30],
        )

    def test_slicing(self):
        surface = self._surface()
        assert np.allclose(surface.time_series(2), [0.5, 1.0, 1.5])
        assert np.allclose(surface.profile(2.0), [2.0, 1.0, 0.4])
        assert np.allclose(surface.initial_profile(), [1.0, 0.5, 0.2])
        assert surface.density(3, 3.0) == pytest.approx(0.6)

    def test_missing_keys_raise(self):
        surface = self._surface()
        with pytest.raises(KeyError):
            surface.time_series(9)
        with pytest.raises(KeyError):
            surface.profile(9.0)

    def test_restrict_times(self):
        restricted = self._surface().restrict_times([2.0, 3.0])
        assert list(restricted.times) == [2.0, 3.0]
        assert np.allclose(restricted.initial_profile(), [2.0, 1.0, 0.4])

    def test_restrict_distances(self):
        restricted = self._surface().restrict_distances([1, 3])
        assert list(restricted.distances) == [1.0, 3.0]
        assert np.allclose(restricted.profile(1.0), [1.0, 0.2])
        assert list(restricted.group_sizes) == [10, 30]

    def test_unit_conversion_round_trip(self):
        surface = self._surface()
        fraction = surface.as_unit("fraction")
        assert fraction.density(1, 1.0) == pytest.approx(0.01)
        back = fraction.as_unit("percent")
        assert np.allclose(back.values, surface.values)

    def test_as_unit_same_is_identity(self):
        surface = self._surface()
        assert surface.as_unit("percent") is surface

    def test_max_density(self):
        assert self._surface().max_density == pytest.approx(3.0)

    def test_monotone_check(self):
        assert self._surface().is_monotone_in_time()
        bad = DensitySurface(
            distances=[1],
            times=[1.0, 2.0],
            values=np.array([[2.0], [1.0]]),
            group_sizes=[5],
        )
        assert not bad.is_monotone_in_time()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DensitySurface(
                distances=[1, 2],
                times=[1.0],
                values=np.zeros((2, 2)),
                group_sizes=[1, 1],
            )
        with pytest.raises(ValueError):
            DensitySurface(
                distances=[1, 2],
                times=[1.0],
                values=np.zeros((1, 2)),
                group_sizes=[1],
            )
        with pytest.raises(ValueError):
            DensitySurface(
                distances=[1],
                times=[1.0],
                values=np.array([[-1.0]]),
                group_sizes=[1],
            )
        with pytest.raises(ValueError):
            DensitySurface(
                distances=[1],
                times=[1.0],
                values=np.array([[1.0]]),
                group_sizes=[1],
                unit="per-mille",
            )


# --------------------------------------------------------------------------- #
# Property-based tests on randomly generated cascades.
# --------------------------------------------------------------------------- #
@settings(max_examples=40, deadline=None)
@given(
    vote_data=st.lists(
        st.tuples(st.floats(0.0, 50.0), st.integers(1, 30)),
        min_size=1,
        max_size=80,
    )
)
def test_density_surface_invariants_on_random_cascades(vote_data):
    """For any cascade: densities lie in [0, 100], are monotone in time, and
    the final density equals (distinct voters in group) / (group size)."""
    votes = [Vote(0.0, 0)] + [Vote(t, u) for t, u in vote_data]
    story = Story(story_id=0, initiator=0, votes=votes)
    distances = {user: 1 + (user % 3) for user in range(1, 31)}
    surface = compute_density_surface(
        story, distances, [1, 2, 3], times=np.arange(1.0, 51.0)
    )
    assert np.all(surface.values >= 0.0)
    assert np.all(surface.values <= 100.0 + 1e-9)
    assert surface.is_monotone_in_time()

    final = surface.values[-1]
    for column, group in enumerate([1, 2, 3]):
        group_users = {u for u, d in distances.items() if d == group}
        voters_in_group = {u for _, u in vote_data if u in group_users}
        expected = 100.0 * len(voters_in_group) / len(group_users)
        assert final[column] == pytest.approx(expected)
