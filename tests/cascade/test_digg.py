"""Tests for the synthetic Digg corpus builder.

These use the small session-scoped corpus from conftest; the assertions are
about the qualitative structure the corpus must reproduce (Section III-B of
the paper), not about exact values.
"""

import pytest

from repro.cascade.digg import (
    REPRESENTATIVE_STORY_NAMES,
    REPRESENTATIVE_STORY_VOTES,
    SyntheticDiggConfig,
    build_synthetic_digg_dataset,
)


class TestConfig:
    def test_defaults_valid(self):
        SyntheticDiggConfig()

    def test_rejects_tiny_corpus(self):
        with pytest.raises(ValueError):
            SyntheticDiggConfig(num_users=10)

    def test_rejects_negative_background(self):
        with pytest.raises(ValueError):
            SyntheticDiggConfig(num_background_stories=-1)

    def test_rejects_short_horizon(self):
        with pytest.raises(ValueError):
            SyntheticDiggConfig(horizon_hours=0.5)

    def test_paper_vote_counts_recorded(self):
        assert REPRESENTATIVE_STORY_VOTES["s1"] == 24099
        assert REPRESENTATIVE_STORY_VOTES["s4"] == 1618
        assert REPRESENTATIVE_STORY_NAMES == ("s1", "s2", "s3", "s4")


class TestCorpusStructure:
    def test_story_names(self, small_corpus):
        assert small_corpus.story_names == ("s1", "s2", "s3", "s4")

    def test_total_story_count(self, small_corpus):
        expected = 4 + small_corpus.config.num_background_stories
        assert small_corpus.dataset.num_stories == expected

    def test_graph_size_matches_config(self, small_corpus):
        assert small_corpus.graph.num_users == small_corpus.config.num_users

    def test_unknown_story_name(self, small_corpus):
        with pytest.raises(KeyError):
            small_corpus.story("s9")

    def test_popularity_ordering(self, small_corpus):
        """s1 must be the most popular story and s4 the least popular."""
        votes = {name: small_corpus.story(name).num_votes for name in REPRESENTATIVE_STORY_NAMES}
        assert votes["s1"] > votes["s2"]
        assert votes["s1"] > votes["s3"]
        assert votes["s2"] > votes["s4"]
        assert votes["s3"] > votes["s4"]

    def test_caching_returns_same_object(self, small_corpus):
        again = build_synthetic_digg_dataset(small_corpus.config)
        assert again is small_corpus

    def test_every_user_identifiable_initiator(self, small_corpus):
        for name in REPRESENTATIVE_STORY_NAMES:
            assert small_corpus.graph.has_user(small_corpus.initiator(name))


class TestDistanceViews:
    def test_hop_distance_histogram_peaks_between_2_and_5(self, small_corpus):
        histogram = small_corpus.hop_distance_histogram("s1", max_distance=10)
        total = sum(histogram.values())
        peak = max(histogram, key=histogram.get)
        assert 2 <= peak <= 5
        near_mass = sum(histogram.get(d, 0) for d in range(2, 6)) / total
        assert near_mass > 0.6

    def test_interest_groups_cover_all_labels(self, small_corpus):
        groups = small_corpus.interest_groups("s1")
        assert set(groups.values()) == {1, 2, 3, 4, 5}

    def test_interest_groups_cached(self, small_corpus):
        assert small_corpus.interest_groups("s1") is small_corpus.interest_groups("s1")

    def test_voting_histories_nonempty(self, small_corpus):
        histories = small_corpus.voting_histories()
        assert len(histories) > 0.5 * small_corpus.graph.num_users
        assert all(len(contents) >= 1 for contents in histories.values())

    def test_initiator_has_rich_history(self, small_corpus):
        histories = small_corpus.voting_histories()
        assert len(histories[small_corpus.initiator("s1")]) >= 3


class TestDensitySurfaces:
    def test_hop_surface_shape(self, s1_hop_surface, small_corpus):
        assert s1_hop_surface.values.shape == (int(small_corpus.config.horizon_hours), 5)
        assert list(s1_hop_surface.distances) == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_hop_surface_monotone_in_time(self, s1_hop_surface):
        assert s1_hop_surface.is_monotone_in_time()

    def test_densities_evolve_over_time(self, s1_hop_surface):
        """The paper's first observation: densities grow and then stabilise."""
        assert s1_hop_surface.values[-1].sum() > s1_hop_surface.values[0].sum()

    def test_distance_one_density_dominates(self, s1_hop_surface):
        """Direct followers are the most influenced group for s1."""
        final = s1_hop_surface.values[-1]
        assert final[0] == max(final)

    def test_interest_surface_decreasing_with_group(self, s1_interest_surface):
        """Figure 5 pattern: density decreases as interest distance grows."""
        final = s1_interest_surface.values[-1]
        assert final[0] == max(final)
        assert final[0] > final[-1]

    def test_interest_surface_monotone_in_time(self, s1_interest_surface):
        assert s1_interest_surface.is_monotone_in_time()

    def test_custom_times(self, small_corpus):
        surface = small_corpus.hop_density_surface("s2", times=[1.0, 6.0, 24.0])
        assert list(surface.times) == [1.0, 6.0, 24.0]

    def test_popular_story_spreads_faster(self, small_corpus):
        """By hour 10 the most popular story has reached a larger share of its
        final audience than the second most popular one (the paper's "popular
        stories spread faster" observation, s1 vs s2)."""
        s1 = small_corpus.hop_density_surface("s1")
        s2 = small_corpus.hop_density_surface("s2")

        def progress(surface):
            total_final = surface.values[-1].sum()
            total_early = surface.profile(10.0).sum()
            return total_early / total_final if total_final > 0 else 0.0

        assert progress(s1) > progress(s2)
