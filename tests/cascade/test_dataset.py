"""Tests for the CascadeDataset container and its JSON round-trip."""

import pytest

from repro.cascade.dataset import CascadeDataset
from repro.cascade.events import Story, Vote
from repro.network.graph import SocialGraph


def make_dataset():
    graph = SocialGraph.from_edges([(0, 1), (1, 2), (0, 2)])
    stories = [
        Story(0, 0, [Vote(0.0, 0), Vote(1.0, 1), Vote(2.5, 2)]),
        Story(1, 1, [Vote(0.0, 1), Vote(3.0, 2)]),
    ]
    return CascadeDataset(graph, stories)


class TestBasics:
    def test_counts(self):
        dataset = make_dataset()
        assert dataset.num_stories == 2
        assert dataset.num_votes == 5

    def test_story_lookup(self):
        dataset = make_dataset()
        assert dataset.story(0).initiator == 0
        with pytest.raises(KeyError):
            dataset.story(9)

    def test_story_ids_sorted(self):
        assert make_dataset().story_ids() == [0, 1]

    def test_duplicate_story_rejected(self):
        dataset = make_dataset()
        with pytest.raises(ValueError):
            dataset.add_story(Story(0, 2))

    def test_stories_by_popularity(self):
        dataset = make_dataset()
        popular = dataset.stories_by_popularity()
        assert popular[0].story_id == 0
        assert popular[1].story_id == 1

    def test_repr(self):
        assert "stories=2" in repr(make_dataset())


class TestDerivedViews:
    def test_user_voting_histories(self):
        histories = make_dataset().user_voting_histories()
        assert histories[0] == {0}
        assert histories[1] == {0, 1}
        assert histories[2] == {0, 1}


class TestSerialization:
    def test_json_round_trip_in_memory(self):
        dataset = make_dataset()
        rebuilt = CascadeDataset.from_json_dict(dataset.to_json_dict())
        assert rebuilt.num_stories == dataset.num_stories
        assert rebuilt.num_votes == dataset.num_votes
        assert sorted(rebuilt.graph.edges()) == sorted(dataset.graph.edges())
        assert rebuilt.story(0).voters == dataset.story(0).voters

    def test_save_and_load(self, tmp_path):
        dataset = make_dataset()
        path = tmp_path / "corpus.json"
        dataset.save(path)
        loaded = CascadeDataset.load(path)
        assert loaded.num_votes == dataset.num_votes
        assert loaded.story(1).vote_times() == dataset.story(1).vote_times()

    def test_vote_times_preserved_exactly(self, tmp_path):
        dataset = make_dataset()
        path = tmp_path / "corpus.json"
        dataset.save(path)
        loaded = CascadeDataset.load(path)
        assert loaded.story(0).vote_times() == [0.0, 1.0, 2.5]
