"""Shared fixtures for the test-suite.

The expensive fixture is the small synthetic Digg corpus; it is built once
per test session (and cached by the library's own ``lru_cache`` keyed on the
configuration), so cascade/core/analysis tests can all share it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cascade.digg import SyntheticDiggConfig, build_synthetic_digg_dataset
from repro.network.generators import DiggLikeGraphConfig, generate_digg_like_graph
from repro.network.graph import SocialGraph

SMALL_CORPUS_CONFIG = SyntheticDiggConfig(
    num_users=900,
    num_background_stories=25,
    horizon_hours=50.0,
    seed=1234,
)
"""A reduced corpus used throughout the tests (fast to build, still realistic)."""


@pytest.fixture(scope="session")
def small_corpus_config() -> SyntheticDiggConfig:
    """Configuration of the shared test corpus (for tests that need it directly)."""
    return SMALL_CORPUS_CONFIG


@pytest.fixture(scope="session")
def small_corpus():
    """A small synthetic Digg corpus shared by the whole test session."""
    return build_synthetic_digg_dataset(SMALL_CORPUS_CONFIG)


@pytest.fixture(scope="session")
def s1_hop_surface(small_corpus):
    """Observed density surface of the most popular story, hop distance."""
    return small_corpus.hop_density_surface("s1")


@pytest.fixture(scope="session")
def s1_interest_surface(small_corpus):
    """Observed density surface of the most popular story, interest distance."""
    return small_corpus.interest_density_surface("s1")


@pytest.fixture(scope="session")
def small_graph() -> SocialGraph:
    """A small Digg-like follower graph (no cascades)."""
    config = DiggLikeGraphConfig(
        num_users=400,
        initial_core=6,
        follows_per_user=2,
        reciprocity_probability=0.3,
        triadic_closure_probability=0.15,
        preferential_fraction=0.45,
        recent_window=20,
        seed=7,
    )
    return generate_digg_like_graph(config)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(20090601)


@pytest.fixture()
def line_graph() -> SocialGraph:
    """A 6-user directed path 0 -> 1 -> 2 -> 3 -> 4 -> 5 (hand-checkable)."""
    graph = SocialGraph(6)
    for user in range(5):
        graph.add_follow(user, user + 1)
    return graph


@pytest.fixture()
def triangle_graph() -> SocialGraph:
    """Three users all following each other plus a pendant follower."""
    graph = SocialGraph(4)
    for a in range(3):
        for b in range(3):
            if a != b:
                graph.add_follow(a, b)
    graph.add_follow(2, 3)
    return graph
