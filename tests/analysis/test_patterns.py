"""Tests for the Section III-B pattern characterisation helpers."""

import numpy as np
import pytest

from repro.analysis.patterns import (
    density_increments,
    distance_ordering,
    dominant_distance,
    final_density_by_distance,
    increments_are_shrinking,
    profile_is_decreasing,
    saturation_time,
)
from repro.cascade.density import DensitySurface


def saturating_surface():
    """Distance 1 saturates quickly, distance 2 slowly, distance 3 is flat."""
    times = np.arange(1.0, 21.0)
    fast = 10.0 * (1.0 - np.exp(-(times - 1.0)))
    slow = 5.0 * (1.0 - np.exp(-(times - 1.0) / 10.0))
    flat = np.full(times.size, 2.0)
    return DensitySurface([1, 2, 3], times, np.column_stack([fast, slow, flat]), [1, 1, 1])


class TestSaturationTime:
    def test_fast_series_saturates_early(self):
        surface = saturating_surface()
        assert saturation_time(surface, 1.0, fraction=0.95) <= 5.0

    def test_slow_series_saturates_late(self):
        surface = saturating_surface()
        assert saturation_time(surface, 2.0, fraction=0.95) > 10.0

    def test_flat_series_is_stable_from_the_start(self):
        assert saturation_time(saturating_surface(), 3.0) == 1.0

    def test_all_distances_is_the_max(self):
        surface = saturating_surface()
        assert saturation_time(surface) == max(
            saturation_time(surface, d) for d in (1.0, 2.0, 3.0)
        )

    def test_zero_final_density_returns_first_time(self):
        surface = DensitySurface([1], [1.0, 2.0], np.zeros((2, 1)), [1])
        assert saturation_time(surface, 1.0) == 1.0

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            saturation_time(saturating_surface(), 1.0, fraction=0.0)
        with pytest.raises(ValueError):
            saturation_time(saturating_surface(), 1.0, fraction=1.5)


class TestIncrements:
    def test_density_increments(self):
        surface = saturating_surface()
        increments = density_increments(surface, 1.0)
        assert increments.size == 19
        assert np.all(increments >= 0.0)

    def test_shrinking_increments_detected(self):
        """The exponential-saturation series has shrinking increments -- the
        observation that motivates the decreasing growth rate r(t)."""
        assert increments_are_shrinking(saturating_surface(), 1.0)

    def test_accelerating_series_not_flagged_as_shrinking(self):
        times = np.arange(1.0, 11.0)
        accelerating = (times - 1.0) ** 2
        surface = DensitySurface([1], times, accelerating[:, None], [1])
        assert not increments_are_shrinking(surface, 1.0)

    def test_short_series_handled(self):
        times = np.arange(1.0, 4.0)
        surface = DensitySurface([1], times, np.array([[1.0], [3.0], [4.0]]), [1])
        assert increments_are_shrinking(surface, 1.0)


class TestOrderings:
    def test_distance_ordering(self):
        surface = saturating_surface()
        assert distance_ordering(surface, 20.0) == [1.0, 2.0, 3.0]

    def test_dominant_distance(self):
        assert dominant_distance(saturating_surface(), 20.0) == 1.0

    def test_profile_is_decreasing(self):
        surface = saturating_surface()
        assert profile_is_decreasing(surface, 20.0)

    def test_profile_not_decreasing_with_bulge(self):
        surface = DensitySurface(
            [1, 2, 3], [1.0], np.array([[5.0, 2.0, 3.0]]), [1, 1, 1]
        )
        assert not profile_is_decreasing(surface, 1.0)

    def test_final_density_by_distance(self):
        final = final_density_by_distance(saturating_surface())
        assert final[3.0] == pytest.approx(2.0)
        assert final[1.0] > final[2.0] > final[3.0]


class TestOnSyntheticCorpus:
    def test_s1_increments_shrink(self, s1_hop_surface):
        assert increments_are_shrinking(s1_hop_surface, 1.0)

    def test_s1_distance_one_dominates(self, s1_hop_surface):
        assert dominant_distance(s1_hop_surface, 50.0) == 1.0

    def test_s1_interest_profile_decreasing_at_the_end(self, s1_interest_surface):
        ordering = distance_ordering(s1_interest_surface, 50.0)
        assert ordering[0] == 1.0
        assert ordering[-1] == 5.0
