"""Tests for text rendering of surfaces, figures and prediction results."""

import numpy as np

from repro.analysis.reports import (
    render_density_surface,
    render_figure_series,
    render_growth_rate_comparison,
    render_prediction_comparison,
)
from repro.cascade.density import DensitySurface
from repro.core.parameters import PAPER_S1_HOP_PARAMETERS
from repro.core.prediction import DiffusionPredictor


def small_surface():
    return DensitySurface(
        distances=[1, 2],
        times=[1.0, 2.0, 3.0],
        values=np.array([[5.0, 1.0], [7.5, 2.0], [9.0, 3.0]]),
        group_sizes=[10, 10],
    )


class TestRenderDensitySurface:
    def test_contains_all_rows_and_columns(self):
        text = render_density_surface(small_surface(), title="Figure 3")
        assert "Figure 3" in text
        assert "x=1" in text and "x=2" in text
        assert text.count("\n") >= 4

    def test_subset_of_times(self):
        text = render_density_surface(small_surface(), times=[2.0])
        assert "7.5" in text
        assert "9" not in text.split("\n")[-1]


class TestRenderFigureSeries:
    def test_lines_become_columns(self):
        series = {"s1": {1: 0.1, 2: 0.5}, "s2": {1: 0.2, 2: 0.4}}
        text = render_figure_series(series, x_label="distance", title="Figure 2")
        assert "Figure 2" in text
        assert "s1" in text and "s2" in text
        assert "distance" in text

    def test_missing_values_filled_with_zero(self):
        series = {"a": {1: 0.5}, "b": {2: 0.7}}
        text = render_figure_series(series)
        assert "0" in text


class TestRenderPredictionComparison:
    def test_contains_accuracy_summary(self, s1_hop_surface):
        predictor = DiffusionPredictor(parameters=PAPER_S1_HOP_PARAMETERS).fit(s1_hop_surface)
        result = predictor.evaluate(s1_hop_surface, times=[2.0, 3.0])
        text = render_prediction_comparison(result, title="Figure 7a")
        assert "Figure 7a" in text
        assert "Overall average prediction accuracy" in text
        assert "actual" in text and "predicted" in text


class TestRenderGrowthRate:
    def test_compares_paper_and_calibrated(self):
        times = np.linspace(1, 6, 24)
        payload = {
            "times": times,
            "paper_rate": 1.4 * np.exp(-1.5 * (times - 1)) + 0.25,
            "calibrated_rate": 1.2 * np.exp(-1.2 * (times - 1)) + 0.2,
            "calibrated_parameters": {"amplitude": 1.2, "decay": 1.2, "floor": 0.2},
        }
        text = render_growth_rate_comparison(payload)
        assert "paper r(t)" in text
        assert "calibrated r(t)" in text
