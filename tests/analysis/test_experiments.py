"""Tests for the per-figure/table experiment runners.

These run on the small session-scoped corpus (not the benchmark corpus), so
the assertions target structure and qualitative shape rather than the
benchmark numbers recorded in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.analysis.experiments import (
    EXPERIMENT_REGISTRY,
    ExperimentContext,
    run_ablation_baselines,
    run_fig2_distance_distribution,
    run_fig3_density_hops,
    run_fig4_density_profiles,
    run_fig5_density_interests,
    run_fig6_growth_rate,
    run_fig7_predicted_vs_actual,
    run_table1_accuracy_hops,
)


@pytest.fixture(scope="module")
def context(small_corpus_config):
    return ExperimentContext(config=small_corpus_config)


class TestContext:
    def test_dataset_is_cached(self, context):
        assert context.dataset is context.dataset

    def test_observation_times(self, context):
        times = context.observation_times()
        assert times[0] == 1.0
        assert times[-1] == context.config.horizon_hours

    def test_registry_covers_all_paper_artifacts(self):
        assert set(EXPERIMENT_REGISTRY) == {
            "FIG-2", "FIG-3", "FIG-4", "FIG-5", "FIG-6", "FIG-7", "TAB-1", "TAB-2", "ABL-1",
        }


class TestFigureRunners:
    def test_fig2_fractions_sum_to_one(self, context):
        result = run_fig2_distance_distribution(context)
        assert set(result) == {"s1", "s2", "s3", "s4"}
        for story, fractions in result.items():
            assert sum(fractions.values()) == pytest.approx(1.0, abs=1e-9)
            assert all(v >= 0 for v in fractions.values())

    def test_fig3_surfaces(self, context):
        result = run_fig3_density_hops(context)
        assert set(result) == {"s1", "s2", "s3", "s4"}
        for surface in result.values():
            assert surface.is_monotone_in_time()
            assert list(surface.distances) == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_fig4_profiles(self, context):
        result = run_fig4_density_profiles(context)
        assert result["profiles"].shape == (50, 5)
        # Profiles at later hours dominate earlier ones (monotone growth).
        assert np.all(result["profiles"][-1] >= result["profiles"][0] - 1e-9)

    def test_fig5_surfaces_decreasing_for_s1(self, context):
        result = run_fig5_density_interests(context)
        final = result["s1"].values[-1]
        assert final[0] == max(final)

    def test_fig6_growth_rate_structure(self, context):
        result = run_fig6_growth_rate(context, hours=6)
        assert result["paper_parameters"] == {"amplitude": 1.4, "decay": 1.5, "floor": 0.25}
        paper = np.asarray(result["paper_rate"])
        calibrated = np.asarray(result["calibrated_rate"])
        assert paper.shape == calibrated.shape
        # Both curves must be non-increasing in time.
        assert np.all(np.diff(paper) <= 1e-12)
        assert np.all(np.diff(calibrated) <= 1e-9)


class TestPredictionRunners:
    def test_fig7_with_calibration(self, context):
        result = run_fig7_predicted_vs_actual(context, prediction_hours=4)
        assert list(result.accuracy_table.times) == [2.0, 3.0, 4.0]
        assert 0.0 <= result.overall_accuracy <= 1.0
        assert result.diagnostics["calibration"]["calibrated"] is True

    def test_fig7_with_paper_parameters(self, context):
        result = run_fig7_predicted_vs_actual(context, prediction_hours=3, calibrate=False)
        assert result.parameters.carrying_capacity == 25.0
        assert result.diagnostics["calibration"]["calibrated"] is False

    def test_fig7_rejects_unknown_metric(self, context):
        with pytest.raises(ValueError):
            run_fig7_predicted_vs_actual(context, distance_metric="euclidean")

    def test_table1_matches_fig7_run(self, context):
        table = run_table1_accuracy_hops(context, prediction_hours=4)
        assert table.accuracies.shape == (5, 3)
        assert 0.0 <= table.overall_average <= 1.0


class TestAblation:
    def test_all_models_scored(self, context):
        results = run_ablation_baselines(
            context, training_hours=4, forecast_hours=8
        )
        assert set(results) == {
            "diffusive_logistic",
            "per_distance_logistic",
            "sis",
            "linear_influence",
        }
        for table in results.values():
            assert list(table.times) == [5.0, 6.0, 7.0, 8.0]
            assert 0.0 <= table.overall_average <= 1.0

    def test_rejects_bad_windows(self, context):
        with pytest.raises(ValueError):
            run_ablation_baselines(context, training_hours=6, forecast_hours=6)
