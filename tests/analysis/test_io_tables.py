"""Tests for the ASCII table / CSV helpers in repro.io."""

import csv

from repro.io.tables import format_table, write_csv

ROWS = [
    {"distance": 1, "average": 0.9827, "t=2": 0.9747},
    {"distance": 2, "average": 0.8699, "t=2": 0.9359},
]


class TestFormatTable:
    def test_contains_header_and_rows(self):
        text = format_table(ROWS, title="Table I")
        assert "Table I" in text
        assert "distance" in text
        assert "0.9827" in text

    def test_column_order_respected(self):
        text = format_table(ROWS, columns=["average", "distance"])
        header = text.splitlines()[0]
        assert header.index("average") < header.index("distance")

    def test_missing_cells_render_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_table(rows, columns=["a", "b"])
        assert text  # renders without raising

    def test_empty_rows(self):
        assert format_table([], title="empty") == "empty"
        assert format_table([]) == ""

    def test_float_format_applied(self):
        text = format_table([{"x": 0.123456789}], float_format="{:.2f}")
        assert "0.12" in text


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        path = write_csv(ROWS, tmp_path / "table1.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["distance"] == "1"
        assert float(rows[1]["average"]) == 0.8699

    def test_empty_rows_create_empty_file(self, tmp_path):
        path = write_csv([], tmp_path / "empty.csv")
        assert path.read_text() == ""

    def test_column_selection(self, tmp_path):
        path = write_csv(ROWS, tmp_path / "subset.csv", columns=["distance"])
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert list(rows[0].keys()) == ["distance"]
