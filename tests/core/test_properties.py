"""Tests for the theoretical-property verification helpers."""

import numpy as np
import pytest

from repro.core.dl_model import DiffusiveLogisticModel, DLSolution
from repro.core.initial_density import InitialDensity
from repro.core.parameters import dl_parameters
from repro.core.properties import (
    check_solution_bounds,
    check_strictly_increasing,
    equilibrium_residual,
    is_lower_time_independent_solution,
)
from repro.numerics.grid import UniformGrid
from repro.numerics.pde_solver import PDESolution

PARAMS = dl_parameters(0.01, 0.5, 25.0)
GRID = UniformGrid(1.0, 5.0, 41)


def make_fake_solution(states, times=None):
    times = times if times is not None else np.arange(1.0, 1.0 + len(states))
    phi = InitialDensity([1, 2, 3, 4, 5], [1.0, 1.0, 1.0, 1.0, 1.0])
    grid = UniformGrid(1.0, 5.0, states.shape[1])
    pde = PDESolution(grid=grid, times=np.asarray(times, dtype=float), states=states)
    return DLSolution(pde_solution=pde, parameters=PARAMS, initial_density=phi)


class TestBoundsCheck:
    def test_accepts_solution_within_bounds(self):
        states = np.array([[1.0, 2.0, 3.0], [2.0, 3.0, 4.0]])
        assert check_solution_bounds(make_fake_solution(states))

    def test_rejects_negative_values(self):
        states = np.array([[1.0, -0.5, 3.0], [2.0, 3.0, 4.0]])
        assert not check_solution_bounds(make_fake_solution(states))

    def test_rejects_values_above_capacity(self):
        states = np.array([[1.0, 2.0, 3.0], [2.0, 30.0, 4.0]])
        assert not check_solution_bounds(make_fake_solution(states))

    def test_tolerance_absorbs_small_overshoot(self):
        states = np.array([[25.0 + 1e-8, 2.0, 3.0]])
        assert check_solution_bounds(make_fake_solution(states), tolerance=1e-6)


class TestMonotonicityCheck:
    def test_accepts_increasing(self):
        states = np.array([[1.0, 2.0], [1.5, 2.5], [2.0, 3.0]])
        assert check_strictly_increasing(make_fake_solution(states))

    def test_rejects_decreasing(self):
        states = np.array([[1.0, 2.0], [0.5, 2.5]])
        assert not check_strictly_increasing(make_fake_solution(states))

    def test_single_snapshot_is_trivially_monotone(self):
        states = np.array([[1.0, 2.0]])
        assert check_strictly_increasing(make_fake_solution(states))


class TestLowerSolution:
    def test_zero_is_a_lower_solution(self):
        values = np.zeros(GRID.num_points)
        assert is_lower_time_independent_solution(values, GRID, PARAMS)

    def test_small_constant_is_a_lower_solution(self):
        values = np.full(GRID.num_points, 2.0)
        assert is_lower_time_independent_solution(values, GRID, PARAMS)

    def test_above_capacity_constant_is_not(self):
        values = np.full(GRID.num_points, 30.0)
        assert not is_lower_time_independent_solution(values, GRID, PARAMS)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            is_lower_time_independent_solution(np.zeros(7), GRID, PARAMS)


class TestEquilibria:
    def test_zero_and_capacity_are_equilibria(self):
        """The uniqueness argument uses I = 0 and I = K as lower/upper solutions."""
        zero = np.zeros(GRID.num_points)
        capacity = np.full(GRID.num_points, PARAMS.carrying_capacity)
        assert equilibrium_residual(zero, GRID, PARAMS) == pytest.approx(0.0, abs=1e-12)
        assert equilibrium_residual(capacity, GRID, PARAMS) == pytest.approx(0.0, abs=1e-9)

    def test_non_equilibrium_has_residual(self):
        values = np.full(GRID.num_points, 10.0)
        assert equilibrium_residual(values, GRID, PARAMS) > 0.1


class TestAgainstRealSolve:
    def test_phi_from_hour_one_is_lower_solution_and_solution_grows(self):
        phi = InitialDensity([1, 2, 3, 4, 5], [5.0, 2.0, 2.5, 1.5, 1.0])
        grid = phi.default_grid(10)
        assert is_lower_time_independent_solution(
            phi.sample(grid), grid, PARAMS, tolerance=1e-6
        )
        model = DiffusiveLogisticModel(PARAMS, points_per_unit=10, max_step=0.05)
        solution = model.solve(phi, [1.0, 5.0, 10.0])
        assert check_strictly_increasing(solution)
        assert check_solution_bounds(solution)
