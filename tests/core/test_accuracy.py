"""Tests for the prediction-accuracy metric and the table machinery."""

import numpy as np
import pytest

from repro.cascade.density import DensitySurface
from repro.core.accuracy import (
    AccuracyTable,
    build_accuracy_table,
    prediction_accuracy,
    relative_error,
)


class TestScalarMetrics:
    def test_relative_error_exact(self):
        assert relative_error(10.0, 10.0) == 0.0

    def test_relative_error_values(self):
        assert relative_error(9.0, 10.0) == pytest.approx(0.1)
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)

    def test_prediction_accuracy_is_complement(self):
        assert prediction_accuracy(9.0, 10.0) == pytest.approx(0.9)
        assert prediction_accuracy(10.0, 10.0) == 1.0

    def test_prediction_accuracy_clipped_at_zero(self):
        assert prediction_accuracy(30.0, 10.0) == 0.0

    def test_zero_actual_handled(self):
        assert prediction_accuracy(1.0, 0.0) == 0.0
        assert np.isfinite(relative_error(1.0, 0.0))


def make_surfaces():
    distances = [1, 2, 3]
    times = [1.0, 2.0, 3.0]
    actual_values = np.array([[10.0, 5.0, 2.0], [12.0, 6.0, 3.0], [14.0, 7.0, 4.0]])
    predicted_values = np.array([[10.0, 5.0, 2.0], [11.4, 6.6, 3.0], [14.0, 6.3, 5.0]])
    actual = DensitySurface(distances, times, actual_values, [1, 1, 1])
    predicted = DensitySurface(distances, times, predicted_values, [1, 1, 1])
    return predicted, actual


class TestBuildAccuracyTable:
    def test_cell_values(self):
        predicted, actual = make_surfaces()
        table = build_accuracy_table(predicted, actual)
        # Default times: every actual time after the first.
        assert list(table.times) == [2.0, 3.0]
        assert table.accuracy(1, 2.0) == pytest.approx(0.95)
        assert table.accuracy(2, 2.0) == pytest.approx(0.9)
        assert table.accuracy(3, 3.0) == pytest.approx(0.75)
        assert table.accuracy(1, 3.0) == pytest.approx(1.0)

    def test_averages(self):
        predicted, actual = make_surfaces()
        table = build_accuracy_table(predicted, actual)
        assert table.row_average(1) == pytest.approx((0.95 + 1.0) / 2)
        assert table.column_average(2.0) == pytest.approx((0.95 + 0.9 + 1.0) / 3)
        assert 0.0 <= table.overall_average <= 1.0

    def test_explicit_times_and_distances(self):
        predicted, actual = make_surfaces()
        table = build_accuracy_table(predicted, actual, times=[3.0], distances=[1, 3])
        assert table.accuracies.shape == (2, 1)

    def test_unit_mismatch_rejected(self):
        predicted, actual = make_surfaces()
        with pytest.raises(ValueError):
            build_accuracy_table(predicted.as_unit("fraction"), actual)

    def test_empty_requests_rejected(self):
        predicted, actual = make_surfaces()
        with pytest.raises(ValueError):
            build_accuracy_table(predicted, actual, times=[])
        with pytest.raises(ValueError):
            build_accuracy_table(predicted, actual, distances=[])

    def test_metadata_propagates(self):
        predicted, actual = make_surfaces()
        table = build_accuracy_table(predicted, actual, metadata={"story": "s1"})
        assert table.metadata["story"] == "s1"


class TestAccuracyTable:
    def _table(self):
        return AccuracyTable(
            distances=[1, 2],
            times=[2.0, 3.0, 4.0],
            accuracies=np.array([[0.9, 0.95, 1.0], [0.8, 0.7, 0.6]]),
        )

    def test_lookups(self):
        table = self._table()
        assert table.accuracy(2, 3.0) == pytest.approx(0.7)
        with pytest.raises(KeyError):
            table.accuracy(3, 3.0)
        with pytest.raises(KeyError):
            table.accuracy(1, 9.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            AccuracyTable(distances=[1], times=[2.0], accuracies=np.zeros((2, 1)))

    def test_to_rows(self):
        rows = self._table().to_rows()
        assert len(rows) == 2
        assert rows[0]["distance"] == 1.0
        assert rows[0]["t=2"] == pytest.approx(0.9)
        assert rows[1]["average"] == pytest.approx(0.7)

    def test_render_contains_percentages(self):
        text = self._table().render(title="Table I")
        assert "Table I" in text
        assert "95.00%" in text
        assert "Overall average accuracy" in text

    def test_overall_average(self):
        assert self._table().overall_average == pytest.approx(np.mean([0.9, 0.95, 1.0, 0.8, 0.7, 0.6]))
