"""Tests for the batched multi-story predictor.

The load-bearing property is equivalence: fitting and scoring stories through
:class:`BatchPredictor` must match running :class:`DiffusionPredictor` per
story, because the batched engine advances each column exactly like a
sequential solve.
"""

import numpy as np
import pytest

from repro.cascade.density import DensitySurface
from repro.core.dl_model import DiffusiveLogisticModel, solve_dl_batch
from repro.core.initial_density import InitialDensity
from repro.core.parameters import (
    DLParameters,
    ExponentialDecayGrowthRate,
    PAPER_S1_HOP_PARAMETERS,
)
from repro.core.prediction import BatchPredictor, DiffusionPredictor


def synthetic_surface(diffusion=0.01, amplitude=1.4, seed_densities=None, hours=8):
    densities = seed_densities if seed_densities is not None else [5.0, 2.0, 2.5, 1.5, 1.0]
    phi = InitialDensity([1, 2, 3, 4, 5], densities)
    parameters = DLParameters(
        diffusion_rate=diffusion,
        growth_rate=ExponentialDecayGrowthRate(amplitude, 1.5, 0.25),
        carrying_capacity=25.0,
    )
    model = DiffusiveLogisticModel(parameters, points_per_unit=12, max_step=0.02)
    surface = model.predict(phi, [float(t) for t in range(1, hours + 1)])
    return DensitySurface(
        distances=surface.distances,
        times=surface.times,
        values=surface.values,
        group_sizes=np.ones(surface.distances.size),
    )


@pytest.fixture(scope="module")
def two_story_surfaces():
    return {
        "a": synthetic_surface(seed_densities=[5.0, 2.0, 2.5, 1.5, 1.0]),
        "b": synthetic_surface(seed_densities=[3.0, 2.5, 1.0, 0.8, 0.6]),
    }


class TestSolveDLBatch:
    def test_matches_sequential_model_solve(self, two_story_surfaces):
        phis = [
            InitialDensity.from_surface(surface)
            for surface in two_story_surfaces.values()
        ]
        times = [2.0, 4.0, 6.0]
        batched = solve_dl_batch(
            PAPER_S1_HOP_PARAMETERS, phis, times, points_per_unit=12, max_step=0.02
        )
        for phi, solution in zip(phis, batched):
            sequential = DiffusiveLogisticModel(
                PAPER_S1_HOP_PARAMETERS, points_per_unit=12, max_step=0.02
            ).solve(phi, times)
            assert (
                np.max(np.abs(solution.pde_solution.states - sequential.pde_solution.states))
                < 1e-10
            )

    def test_broadcasts_parameters_against_one_phi(self):
        phi = InitialDensity([1, 2, 3, 4, 5], [5.0, 2.0, 2.5, 1.5, 1.0])
        candidates = [
            PAPER_S1_HOP_PARAMETERS,
            PAPER_S1_HOP_PARAMETERS.with_diffusion_rate(0.05),
        ]
        solutions = solve_dl_batch(candidates, phi, [2.0, 3.0], points_per_unit=8)
        assert len(solutions) == 2
        assert solutions[0].parameters.diffusion_rate == 0.01
        assert solutions[1].parameters.diffusion_rate == 0.05

    def test_scipy_backend_agrees_via_column_reactions(self):
        # The scipy backend has no vectorised engine; the fallback must use
        # the per-column reactions (no full-batch tiling) and still agree.
        phi = InitialDensity([1, 2, 3, 4, 5], [5.0, 2.0, 2.5, 1.5, 1.0])
        candidates = [
            PAPER_S1_HOP_PARAMETERS,
            PAPER_S1_HOP_PARAMETERS.with_diffusion_rate(0.05),
        ]
        times = [2.0, 3.0]
        internal = solve_dl_batch(candidates, phi, times, points_per_unit=8, max_step=0.02)
        scipy_solutions = solve_dl_batch(
            candidates, phi, times, points_per_unit=8, max_step=0.05, backend="scipy"
        )
        for a, b in zip(internal, scipy_solutions):
            assert np.allclose(
                a.pde_solution.states, b.pde_solution.states, rtol=2e-3, atol=1e-4
            )

    def test_rejects_mismatched_lengths(self):
        phi = InitialDensity([1, 2, 3], [5.0, 2.0, 1.0])
        with pytest.raises(ValueError):
            solve_dl_batch(
                [PAPER_S1_HOP_PARAMETERS] * 2, [phi] * 3, [2.0], points_per_unit=8
            )

    def test_rejects_incompatible_intervals(self):
        phi_a = InitialDensity([1, 2, 3, 4, 5], [5.0, 2.0, 2.5, 1.5, 1.0])
        phi_b = InitialDensity([1, 2, 3, 4], [5.0, 2.0, 2.5, 1.5])
        with pytest.raises(ValueError):
            solve_dl_batch(
                PAPER_S1_HOP_PARAMETERS, [phi_a, phi_b], [2.0], points_per_unit=8
            )


class TestBatchPredictorEquivalence:
    def test_matches_sequential_predictor_with_explicit_parameters(
        self, two_story_surfaces
    ):
        times = [2.0, 3.0, 4.0, 5.0, 6.0]
        batch = BatchPredictor(parameters=PAPER_S1_HOP_PARAMETERS).fit(two_story_surfaces)
        batch_results = batch.evaluate(two_story_surfaces, times=times)
        for name, surface in two_story_surfaces.items():
            single = DiffusionPredictor(parameters=PAPER_S1_HOP_PARAMETERS).fit(surface)
            expected = single.evaluate(surface, times=times)
            got = batch_results[name]
            assert np.max(np.abs(got.predicted.values - expected.predicted.values)) < 1e-10
            assert got.overall_accuracy == pytest.approx(
                expected.overall_accuracy, abs=1e-10
            )

    def test_per_story_parameter_mapping(self, two_story_surfaces):
        mapping = {
            "a": PAPER_S1_HOP_PARAMETERS,
            "b": PAPER_S1_HOP_PARAMETERS.with_diffusion_rate(0.05),
        }
        batch = BatchPredictor(parameters=mapping).fit(two_story_surfaces)
        assert batch.parameters_for("a").diffusion_rate == 0.01
        assert batch.parameters_for("b").diffusion_rate == 0.05

    def test_missing_mapping_entry_raises(self, two_story_surfaces):
        with pytest.raises(KeyError):
            BatchPredictor(parameters={"a": PAPER_S1_HOP_PARAMETERS}).fit(
                two_story_surfaces
            )


class TestBatchPredictorCalibration:
    def test_calibrated_batch_prediction_is_accurate(self, two_story_surfaces):
        batch = BatchPredictor().fit(two_story_surfaces)
        results = batch.evaluate(two_story_surfaces, times=[2.0, 3.0, 4.0, 5.0, 6.0])
        # Surfaces are noise-free DL output, so calibrated predictions should
        # recover them almost exactly.
        assert results.overall_accuracy > 0.9
        for name in two_story_surfaces:
            assert batch.calibration_details_for(name)["calibrated"] is True


class TestBatchPredictorAPI:
    def test_unfitted_predictor_raises(self):
        with pytest.raises(RuntimeError):
            BatchPredictor().solve([2.0])

    def test_fit_story_is_incremental_and_matches_fit(self, two_story_surfaces):
        whole = BatchPredictor(parameters=PAPER_S1_HOP_PARAMETERS).fit(two_story_surfaces)
        incremental = BatchPredictor(parameters=PAPER_S1_HOP_PARAMETERS)
        for name, surface in two_story_surfaces.items():
            incremental.fit_story(name, surface)
        assert incremental.story_names == whole.story_names
        got = incremental.evaluate(two_story_surfaces, times=[2.0, 3.0])
        want = whole.evaluate(two_story_surfaces, times=[2.0, 3.0])
        for name in two_story_surfaces:
            assert np.array_equal(got[name].predicted.values, want[name].predicted.values)

    def test_failed_fit_story_leaves_no_partial_state(self, two_story_surfaces):
        # A mapping without the story's parameters makes _resolve_parameters
        # raise after phi construction; the predictor must not keep a
        # half-fitted story behind.
        predictor = BatchPredictor(parameters={"a": PAPER_S1_HOP_PARAMETERS})
        predictor.fit_story("a", two_story_surfaces["a"])
        with pytest.raises(KeyError):
            predictor.fit_story("b", two_story_surfaces["b"])
        assert predictor.story_names == ("a",)
        # The predictor stays fully usable for its fitted stories.
        results = predictor.evaluate({"a": two_story_surfaces["a"]}, times=[2.0, 3.0])
        assert results["a"].overall_accuracy >= 0.0

    def test_empty_surfaces_rejected(self):
        with pytest.raises(ValueError):
            BatchPredictor().fit({})

    def test_evaluate_requires_all_actuals(self, two_story_surfaces):
        batch = BatchPredictor(parameters=PAPER_S1_HOP_PARAMETERS).fit(two_story_surfaces)
        with pytest.raises(KeyError):
            batch.evaluate({"a": two_story_surfaces["a"]})

    def test_summary_rows_and_overall(self, two_story_surfaces):
        batch = BatchPredictor(parameters=PAPER_S1_HOP_PARAMETERS).fit(two_story_surfaces)
        results = batch.evaluate(two_story_surfaces, times=[2.0, 3.0])
        rows = results.summary_rows()
        assert {row["story"] for row in rows} == {"a", "b"}
        assert results.overall_accuracy == pytest.approx(
            np.mean([row["overall_accuracy"] for row in rows])
        )
        assert results.story_names == ("a", "b")
        assert len(results) == 2

    def test_predict_returns_surface_per_story(self, two_story_surfaces):
        batch = BatchPredictor(parameters=PAPER_S1_HOP_PARAMETERS).fit(two_story_surfaces)
        predicted = batch.predict([2.0, 4.0])
        assert set(predicted) == {"a", "b"}
        for surface in predicted.values():
            assert surface.values.shape == (3, 5)  # initial time + 2 targets

    def test_groups_heterogeneous_intervals(self):
        surfaces = {
            "wide": synthetic_surface(),
            "narrow": DensitySurface(
                [1, 2, 3],
                np.arange(1.0, 7.0),
                np.column_stack(
                    [np.linspace(4, 8, 6), np.linspace(2, 5, 6), np.linspace(1, 3, 6)]
                ),
                np.ones(3),
            ),
        }
        batch = BatchPredictor(parameters=PAPER_S1_HOP_PARAMETERS).fit(surfaces)
        solutions = batch.solve([2.0, 3.0])
        assert set(solutions) == {"wide", "narrow"}
        assert solutions["wide"].grid.upper == 5.0
        assert solutions["narrow"].grid.upper == 3.0
