"""Tests for the initial density function phi and its requirement checks."""

import numpy as np
import pytest

from repro.cascade.density import DensitySurface
from repro.core.initial_density import InitialDensity
from repro.core.parameters import PAPER_S1_HOP_PARAMETERS, dl_parameters


PAPER_LIKE_SNAPSHOT = ([1, 2, 3, 4, 5], [5.0, 2.0, 2.5, 1.5, 1.0])
"""An hour-1 profile with the convex-ish shape of the paper's s1 data."""


class TestConstruction:
    def test_interpolates_observations(self):
        distances, densities = PAPER_LIKE_SNAPSHOT
        phi = InitialDensity(distances, densities)
        assert np.allclose(phi(np.array(distances, dtype=float)), densities, atol=1e-9)

    def test_bounds(self):
        phi = InitialDensity(*PAPER_LIKE_SNAPSHOT)
        assert phi.lower == 1.0
        assert phi.upper == 5.0
        assert phi.initial_time == 1.0

    def test_from_surface(self):
        surface = DensitySurface(
            distances=[1, 2, 3],
            times=[1.0, 2.0],
            values=np.array([[4.0, 2.0, 1.0], [5.0, 3.0, 2.0]]),
            group_sizes=[5, 5, 5],
        )
        phi = InitialDensity.from_surface(surface)
        assert phi.initial_time == 1.0
        assert phi(1.0) == pytest.approx(4.0)
        assert phi(3.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            InitialDensity([1, 2], [1.0])
        with pytest.raises(ValueError):
            InitialDensity([1], [1.0])

    def test_accessors_return_copies(self):
        phi = InitialDensity(*PAPER_LIKE_SNAPSHOT)
        distances = phi.distances
        distances[0] = 99.0
        assert phi.distances[0] == 1.0


class TestRequirements:
    def test_requirement_ii_flat_ends(self):
        phi = InitialDensity(*PAPER_LIKE_SNAPSHOT)
        left, right = phi.boundary_slopes()
        assert left == pytest.approx(0.0, abs=1e-9)
        assert right == pytest.approx(0.0, abs=1e-9)

    def test_requirement_i_twice_differentiable(self):
        """The second derivative must be continuous across interior knots."""
        phi = InitialDensity(*PAPER_LIKE_SNAPSHOT)
        for knot in (2.0, 3.0, 4.0):
            left = phi.second_derivative(knot - 1e-8)
            right = phi.second_derivative(knot + 1e-8)
            assert left == pytest.approx(right, abs=1e-4)

    def test_requirement_iii_lower_solution_with_paper_parameters(self):
        """With the paper's guidance (K large, d much smaller than r) a
        mostly convex phi satisfies Equation 6."""
        phi = InitialDensity(*PAPER_LIKE_SNAPSHOT)
        report = phi.lower_solution_report(PAPER_S1_HOP_PARAMETERS)
        assert report.satisfied
        assert report.min_value >= -report.tolerance
        assert report.violating_positions == ()

    def test_lower_solution_violated_with_huge_diffusion(self):
        """If d dominates r the inequality can fail where phi is concave."""
        phi = InitialDensity([1, 2, 3, 4, 5], [1.0, 6.0, 8.0, 6.0, 1.0])
        params = dl_parameters(50.0, 0.01, 100.0)
        report = phi.lower_solution_report(params)
        assert not report.satisfied
        assert len(report.violating_positions) > 0
        assert report.min_value < 0

    def test_default_grid_spans_observations(self):
        phi = InitialDensity(*PAPER_LIKE_SNAPSHOT)
        grid = phi.default_grid(points_per_unit=10)
        assert grid.lower == 1.0
        assert grid.upper == 5.0
        assert grid.num_points == 41

    def test_sample_on_grid(self):
        phi = InitialDensity(*PAPER_LIKE_SNAPSHOT)
        grid = phi.default_grid()
        values = phi.sample(grid)
        assert values.shape == (grid.num_points,)
        assert np.all(values >= 0.0)
