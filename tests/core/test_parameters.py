"""Tests for DL parameters and growth-rate families."""

import numpy as np
import pytest

from repro.core.parameters import (
    PAPER_S1_HOP_PARAMETERS,
    PAPER_S1_INTEREST_PARAMETERS,
    ConstantGrowthRate,
    DLParameters,
    ExponentialDecayGrowthRate,
    SpaceTimeGrowthRate,
    dl_parameters,
)


class TestConstantGrowthRate:
    def test_broadcasts_over_positions(self):
        rate = ConstantGrowthRate(0.7)
        positions = np.linspace(1, 5, 9)
        assert np.allclose(rate(positions, 3.0), 0.7)

    def test_at_time(self):
        assert ConstantGrowthRate(0.3).at_time(100.0) == pytest.approx(0.3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantGrowthRate(-0.1)


class TestExponentialDecayGrowthRate:
    def test_paper_equation_7_values(self):
        """r(t) = 1.4 exp(-1.5 (t-1)) + 0.25 -- Figure 6 starts at 1.65 and
        decays towards 0.25."""
        rate = ExponentialDecayGrowthRate(amplitude=1.4, decay=1.5, floor=0.25)
        assert rate.scalar(1.0) == pytest.approx(1.65)
        assert rate.scalar(2.0) == pytest.approx(1.4 * np.exp(-1.5) + 0.25)
        assert rate.scalar(50.0) == pytest.approx(0.25, abs=1e-6)

    def test_monotone_decreasing(self):
        rate = ExponentialDecayGrowthRate(amplitude=1.6, decay=1.0, floor=0.1)
        times = np.linspace(1, 20, 50)
        values = [rate.scalar(t) for t in times]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_vectorised_call(self):
        rate = ExponentialDecayGrowthRate(amplitude=1.0, decay=1.0, floor=0.0)
        positions = np.array([1.0, 2.0, 3.0])
        assert np.allclose(rate(positions, 1.0), 1.0)

    def test_reference_time_shift(self):
        rate = ExponentialDecayGrowthRate(amplitude=2.0, decay=1.0, floor=0.0, reference_time=5.0)
        assert rate.scalar(5.0) == pytest.approx(2.0)

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            ExponentialDecayGrowthRate(-1.0, 1.0, 0.1)
        with pytest.raises(ValueError):
            ExponentialDecayGrowthRate(1.0, -1.0, 0.1)
        with pytest.raises(ValueError):
            ExponentialDecayGrowthRate(1.0, 1.0, -0.1)


class TestSpaceTimeGrowthRate:
    def test_depends_on_position(self):
        rate = SpaceTimeGrowthRate(lambda x, t: 0.5 + 0.1 * x)
        positions = np.array([1.0, 2.0, 3.0])
        assert np.allclose(rate(positions, 1.0), [0.6, 0.7, 0.8])

    def test_scalar_function_broadcast(self):
        rate = SpaceTimeGrowthRate(lambda x, t: np.asarray(0.4))
        positions = np.array([1.0, 2.0])
        assert np.allclose(rate(positions, 0.0), 0.4)

    def test_negative_values_rejected_at_call(self):
        rate = SpaceTimeGrowthRate(lambda x, t: x - 10.0)
        with pytest.raises(ValueError):
            rate(np.array([1.0]), 0.0)


class TestDLParameters:
    def test_reaction_term(self):
        params = dl_parameters(0.01, 0.5, 10.0)
        density = np.array([0.0, 5.0, 10.0])
        positions = np.array([1.0, 2.0, 3.0])
        reaction = params.reaction(density, positions, 1.0)
        assert reaction[0] == pytest.approx(0.0)
        assert reaction[1] == pytest.approx(0.5 * 5.0 * 0.5)
        assert reaction[2] == pytest.approx(0.0)

    def test_reaction_with_time_dependent_rate(self):
        params = PAPER_S1_HOP_PARAMETERS
        density = np.array([5.0])
        positions = np.array([1.0])
        early = params.reaction(density, positions, 1.0)
        late = params.reaction(density, positions, 6.0)
        assert early[0] > late[0]

    def test_with_methods_return_copies(self):
        params = dl_parameters(0.01, 0.5, 10.0)
        assert params.with_carrying_capacity(20.0).carrying_capacity == 20.0
        assert params.with_diffusion_rate(0.05).diffusion_rate == 0.05
        assert params.with_growth_rate(1.0).growth_rate.at_time(0.0) == pytest.approx(1.0)
        assert params.carrying_capacity == 10.0

    def test_coercion_of_callable_growth_rate(self):
        params = dl_parameters(0.01, lambda t: 2.0 / t, 10.0)
        assert params.growth_rate.at_time(4.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            dl_parameters(0.0, 0.5, 10.0)
        with pytest.raises(ValueError):
            dl_parameters(0.01, 0.5, 0.0)
        with pytest.raises(TypeError):
            DLParameters(0.01, 0.5, 10.0)  # growth rate must be a GrowthRate object

    def test_coercion_rejects_nonsense(self):
        with pytest.raises(TypeError):
            dl_parameters(0.01, "fast", 10.0)


class TestPaperParameterSets:
    def test_hop_parameters(self):
        params = PAPER_S1_HOP_PARAMETERS
        assert params.diffusion_rate == pytest.approx(0.01)
        assert params.carrying_capacity == pytest.approx(25.0)
        assert params.growth_rate.at_time(1.0) == pytest.approx(1.65)

    def test_interest_parameters(self):
        params = PAPER_S1_INTEREST_PARAMETERS
        assert params.diffusion_rate == pytest.approx(0.05)
        assert params.carrying_capacity == pytest.approx(60.0)
        assert params.growth_rate.at_time(1.0) == pytest.approx(1.7)
