"""Legacy scattered-kwarg shims must warn and name the typed replacement."""

import warnings

import pytest

from repro.core.config import (
    CalibrationConfig,
    SolverConfig,
    merge_calibration_config,
    merge_solver_config,
)
from repro.core.prediction import DiffusionPredictor
from repro.service import CorpusSharder, PredictionService


class TestMergeShims:
    def test_legacy_solver_knobs_warn(self):
        with pytest.warns(DeprecationWarning, match="solver=SolverConfig"):
            config = merge_solver_config(None, points_per_unit=10, max_step=0.1)
        assert config.points_per_unit == 10
        assert config.max_step == 0.1

    def test_warning_names_the_given_knobs(self):
        with pytest.warns(DeprecationWarning, match="backend"):
            merge_solver_config(None, backend="internal")

    def test_typed_solver_config_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = merge_solver_config(SolverConfig(points_per_unit=10))
        assert config.points_per_unit == 10

    def test_defaults_are_silent(self):
        # No legacy knob given: nothing to migrate, nothing to warn about.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            merge_solver_config(None)

    def test_legacy_calibration_flag_warns(self):
        with pytest.warns(DeprecationWarning, match="CalibrationConfig"):
            config = merge_calibration_config(None, False, default_batch=True)
        assert config.batch is False

    def test_typed_calibration_config_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = merge_calibration_config(
                CalibrationConfig(batch=False), None, default_batch=True
            )
        assert config.batch is False


class TestConsumersRouteThroughShims:
    def test_diffusion_predictor_legacy_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="solver=SolverConfig"):
            DiffusionPredictor(points_per_unit=4, max_step=0.25)

    def test_prediction_service_legacy_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="solver=SolverConfig"):
            service = PredictionService(points_per_unit=4)
        assert service is not None

    def test_corpus_sharder_legacy_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="solver=SolverConfig"):
            CorpusSharder(points_per_unit=4)

    def test_typed_configs_stay_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            DiffusionPredictor(solver=SolverConfig(points_per_unit=4, max_step=0.25))
            PredictionService(solver=SolverConfig(points_per_unit=4))
            CorpusSharder(solver=SolverConfig(points_per_unit=4))
