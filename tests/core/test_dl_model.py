"""Tests for the Diffusive Logistic model itself."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dl_model import DiffusiveLogisticModel
from repro.core.initial_density import InitialDensity
from repro.core.parameters import PAPER_S1_HOP_PARAMETERS, dl_parameters
from repro.core.properties import check_solution_bounds, check_strictly_increasing
from repro.numerics.integrators import RungeKutta4Integrator
from repro.numerics.ode import LogisticCurve

PHI = InitialDensity([1, 2, 3, 4, 5], [5.0, 2.0, 2.5, 1.5, 1.0])
HOURS = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]


class TestConstruction:
    def test_rejects_coarse_grid(self):
        with pytest.raises(ValueError):
            DiffusiveLogisticModel(PAPER_S1_HOP_PARAMETERS, points_per_unit=1)

    def test_accessors(self):
        model = DiffusiveLogisticModel(PAPER_S1_HOP_PARAMETERS)
        assert model.parameters is PAPER_S1_HOP_PARAMETERS
        assert model.solver.backend == "internal"


class TestSolveBasics:
    def test_solution_contains_initial_profile(self):
        model = DiffusiveLogisticModel(PAPER_S1_HOP_PARAMETERS, points_per_unit=10, max_step=0.05)
        solution = model.solve(PHI, HOURS)
        assert np.allclose(solution.profile(1.0), PHI.densities, atol=1e-6)

    def test_initial_time_always_added(self):
        model = DiffusiveLogisticModel(PAPER_S1_HOP_PARAMETERS, points_per_unit=10, max_step=0.05)
        solution = model.solve(PHI, [3.0, 6.0])
        assert 1.0 in solution.times

    def test_predict_returns_surface(self):
        model = DiffusiveLogisticModel(PAPER_S1_HOP_PARAMETERS, points_per_unit=10, max_step=0.05)
        surface = model.predict(PHI, HOURS)
        assert surface.values.shape == (6, 5)
        assert list(surface.distances) == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert surface.unit == "percent"

    def test_density_at_point(self):
        model = DiffusiveLogisticModel(PAPER_S1_HOP_PARAMETERS, points_per_unit=10, max_step=0.05)
        solution = model.solve(PHI, HOURS)
        assert solution.density_at(1.0, 1.0) == pytest.approx(5.0, abs=1e-6)
        assert solution.density_at(1.0, 6.0) > 5.0

    def test_custom_distances_sampled(self):
        model = DiffusiveLogisticModel(PAPER_S1_HOP_PARAMETERS, points_per_unit=10, max_step=0.05)
        surface = model.predict(PHI, [2.0], distances=[1.5, 2.5])
        assert list(surface.distances) == [1.5, 2.5]


class TestPaperProperties:
    """Numerical verification of Section II-C."""

    def _solve(self, **model_kwargs):
        defaults = dict(points_per_unit=15, max_step=0.02)
        defaults.update(model_kwargs)
        model = DiffusiveLogisticModel(PAPER_S1_HOP_PARAMETERS, **defaults)
        return model.solve(PHI, np.arange(1.0, 25.0))

    def test_unique_property_bounds(self):
        """0 <= I(x, t) <= K at all times."""
        solution = self._solve()
        assert check_solution_bounds(solution)
        assert np.all(solution.pde_solution.states >= -1e-9)
        assert np.all(solution.pde_solution.states <= 25.0 + 1e-6)

    def test_strictly_increasing_property(self):
        """With phi a lower solution, I(x, t) increases in t at every x."""
        solution = self._solve()
        assert check_strictly_increasing(solution)
        # Strict growth at a point well below the carrying capacity.
        early = solution.density_at(3.0, 1.0)
        late = solution.density_at(3.0, 20.0)
        assert late > early + 0.5

    def test_long_run_limit_is_carrying_capacity(self):
        """As t -> infinity every point approaches K (the stable equilibrium)."""
        model = DiffusiveLogisticModel(
            dl_parameters(0.01, 0.5, 25.0), points_per_unit=10, max_step=0.05
        )
        solution = model.solve(PHI, [80.0])
        assert np.allclose(solution.profile(80.0), 25.0, atol=0.2)

    def test_rk4_integrator_agrees_with_crank_nicolson(self):
        cn = self._solve()
        rk4 = self._solve(integrator=RungeKutta4Integrator())
        assert np.allclose(
            cn.profile(6.0), rk4.profile(6.0), rtol=1e-3, atol=1e-3
        )

    def test_scipy_backend_agrees_with_internal(self):
        cn = self._solve()
        scipy_solution = self._solve(backend="scipy", max_step=0.1)
        assert np.allclose(cn.profile(6.0), scipy_solution.profile(6.0), rtol=3e-3, atol=1e-3)


class TestModelBehaviour:
    def test_zero_diffusion_limit_matches_independent_logistic(self):
        """With a (numerically) negligible diffusion rate and constant r the
        solution at each observation point follows the scalar logistic curve."""
        params = dl_parameters(1e-8, 0.6, 25.0)
        model = DiffusiveLogisticModel(params, points_per_unit=10, max_step=0.02)
        solution = model.solve(PHI, HOURS)
        for distance, initial in zip(PHI.distances, PHI.densities):
            curve = LogisticCurve(0.6, 25.0, initial, initial_time=1.0)
            assert solution.density_at(distance, 6.0) == pytest.approx(curve(6.0), rel=2e-3)

    def test_diffusion_smooths_the_profile(self):
        """A larger diffusion rate reduces the spatial variance of the profile."""
        phi = InitialDensity([1, 2, 3, 4, 5], [10.0, 1.0, 1.0, 1.0, 1.0])
        slow = DiffusiveLogisticModel(dl_parameters(0.001, 0.1, 50.0), points_per_unit=15, max_step=0.02)
        fast = DiffusiveLogisticModel(dl_parameters(0.5, 0.1, 50.0), points_per_unit=15, max_step=0.02)
        profile_slow = slow.solve(phi, [5.0]).profile(5.0)
        profile_fast = fast.solve(phi, [5.0]).profile(5.0)
        assert np.var(profile_fast) < np.var(profile_slow)

    def test_decaying_growth_rate_slows_late_growth(self):
        constant = dl_parameters(0.01, 1.65, 25.0)
        decaying = PAPER_S1_HOP_PARAMETERS  # starts at 1.65 and decays to 0.25
        model_c = DiffusiveLogisticModel(constant, points_per_unit=10, max_step=0.05)
        model_d = DiffusiveLogisticModel(decaying, points_per_unit=10, max_step=0.05)
        final_c = model_c.solve(PHI, [10.0]).profile(10.0)
        final_d = model_d.solve(PHI, [10.0]).profile(10.0)
        assert np.all(final_d <= final_c + 1e-9)

    def test_to_surface_clips_negative_values(self):
        model = DiffusiveLogisticModel(PAPER_S1_HOP_PARAMETERS, points_per_unit=10, max_step=0.05)
        surface = model.solve(PHI, HOURS).to_surface()
        assert np.all(surface.values >= 0.0)

    def test_grid_refinement_convergence(self):
        """Doubling the spatial resolution changes the hour-6 profile only slightly."""
        coarse = DiffusiveLogisticModel(PAPER_S1_HOP_PARAMETERS, points_per_unit=8, max_step=0.02)
        fine = DiffusiveLogisticModel(PAPER_S1_HOP_PARAMETERS, points_per_unit=32, max_step=0.02)
        profile_coarse = coarse.solve(PHI, [6.0]).profile(6.0)
        profile_fine = fine.solve(PHI, [6.0]).profile(6.0)
        assert np.allclose(profile_coarse, profile_fine, rtol=5e-3)


@settings(max_examples=15, deadline=None)
@given(
    densities=st.lists(st.floats(0.5, 20.0), min_size=3, max_size=6),
    diffusion=st.floats(0.001, 0.2),
    rate=st.floats(0.1, 2.0),
)
def test_bounds_and_monotonicity_hold_for_random_inputs(densities, diffusion, rate):
    """Property-based check of Section II-C on random initial snapshots.

    The bounds of the unique property (0 <= I <= K) must hold for *any*
    admissible phi; the strictly-increasing property is only guaranteed when
    phi is a lower time-independent solution (Equation 5), so that assertion
    is conditioned on the check the paper itself states.
    """
    capacity = 25.0
    parameters = dl_parameters(diffusion, rate, capacity)
    phi = InitialDensity(np.arange(1.0, len(densities) + 1.0), densities)
    model = DiffusiveLogisticModel(parameters, points_per_unit=8, max_step=0.1)
    solution = model.solve(phi, [1.0, 3.0, 6.0])
    assert check_solution_bounds(solution, tolerance=1e-3)
    if phi.lower_solution_report(parameters, tolerance=1e-9).satisfied:
        assert check_strictly_increasing(solution, tolerance=1e-6)
