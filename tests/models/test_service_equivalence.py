"""Model-registry serving equivalence: service results == direct results.

Extends the delta-vs-batch pattern beyond ``dl``: every registered model's
output through :class:`PredictionService` must be bit-identical to its
direct synchronous ``fit`` + ``evaluate`` path, and mixed-model corpora
must never share shards across models.
"""

import asyncio

import numpy as np
import pytest

from repro.cascade.density import DensitySurface
from repro.core.config import ModelSpec, SolverConfig
from repro.core.dl_model import DiffusiveLogisticModel
from repro.core.errors import UnknownModelError
from repro.core.initial_density import InitialDensity
from repro.core.parameters import PAPER_S1_HOP_PARAMETERS
from repro.models import compare_models, get_model
from repro.service import CorpusSharder, PredictionService, score_corpus_sync

TRAINING_TIMES = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
EVALUATION_TIMES = TRAINING_TIMES[1:]
SOLVER = SolverConfig(points_per_unit=12, max_step=0.02)


def synthetic_surface(seed_densities):
    phi = InitialDensity([1, 2, 3, 4, 5], seed_densities)
    model = DiffusiveLogisticModel(
        PAPER_S1_HOP_PARAMETERS, points_per_unit=12, max_step=0.02
    )
    surface = model.predict(phi, [float(t) for t in range(1, 9)])
    return DensitySurface(
        distances=surface.distances,
        times=surface.times,
        values=surface.values,
        group_sizes=np.ones(surface.distances.size),
    )


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(11)
    return {
        f"story{i}": synthetic_surface(list(2.0 + 3.0 * rng.random(5)))
        for i in range(5)
    }


def direct_results(model_name, corpus, spec):
    fitter = get_model(model_name).batch_fitter(spec)
    for name, surface in corpus.items():
        fitter.fit_story(name, surface, TRAINING_TIMES)
    return fitter.evaluate(corpus, times=EVALUATION_TIMES)


class TestEveryModelIsBitIdenticalThroughTheService:
    @pytest.mark.parametrize(
        "model_name", ["dl", "logistic", "sis", "linear-influence"]
    )
    def test_service_matches_direct_path(self, corpus, model_name):
        params = (
            {"parameters": PAPER_S1_HOP_PARAMETERS} if model_name == "dl" else {}
        )
        spec = ModelSpec(name=model_name, params=params, solver=SOLVER)
        reference = direct_results(model_name, corpus, spec)

        service_kwargs = dict(model=model_name, solver=SOLVER, max_workers=3)
        if model_name == "dl":
            service_kwargs["parameters"] = PAPER_S1_HOP_PARAMETERS
        served = score_corpus_sync(
            corpus,
            training_times=TRAINING_TIMES,
            evaluation_times=EVALUATION_TIMES,
            **service_kwargs,
        )

        assert set(served) == set(reference)
        for name in corpus:
            assert np.array_equal(
                served[name].predicted.values, reference[name].predicted.values
            ), f"{model_name}: {name} diverged through the service"
            assert np.array_equal(
                served[name].accuracy_table.accuracies,
                reference[name].accuracy_table.accuracies,
            )
            assert served[name].model == model_name


class TestMixedModelCorpus:
    def test_shards_never_mix_models(self, corpus):
        models = {"story0": "logistic", "story1": "logistic"}

        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS, solver=SOLVER, max_workers=2
            ) as service:
                jobs = [
                    await service.submit(
                        name,
                        surface,
                        TRAINING_TIMES,
                        EVALUATION_TIMES,
                        model=models.get(name),
                    )
                    for name, surface in corpus.items()
                ]
                results = {job.name: await job.wait() for job in jobs}
                return results, service.stats(), service.metrics.snapshot()

        results, stats, metrics = asyncio.run(run())

        # Two models -> at least two shards even though every surface shares
        # one spatial signature.
        assert stats["shards_solved"] >= 2
        for name, result in results.items():
            expected = models.get(name, "dl")
            assert result.model == expected

        # Per-model attribution via labeled counters.
        assert metrics['service.jobs_succeeded{model="logistic"}'] == 2
        assert metrics['service.jobs_succeeded{model="dl"}'] == len(corpus) - 2
        assert metrics["service.jobs_succeeded"] == len(corpus)

        # Each side matches its direct reference.
        logistic_corpus = {n: corpus[n] for n in models}
        dl_corpus = {n: s for n, s in corpus.items() if n not in models}
        logistic_reference = direct_results(
            "logistic", logistic_corpus, ModelSpec(name="logistic", solver=SOLVER)
        )
        dl_reference = direct_results(
            "dl",
            dl_corpus,
            ModelSpec(
                name="dl",
                params={"parameters": PAPER_S1_HOP_PARAMETERS},
                solver=SOLVER,
            ),
        )
        for name, reference in {**logistic_reference, **dl_reference}.items():
            assert np.array_equal(
                results[name].predicted.values, reference.predicted.values
            )

    def test_mixed_models_autotune_independently(self, corpus):
        # Per-story costs differ by orders of magnitude between models, so
        # each model must feed its own EWMA -- one shared autotuner would
        # let cheap logistic solves inflate DL shard sizes.
        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS,
                solver=SOLVER,
                autotune=True,
            ) as service:
                jobs = [
                    await service.submit(
                        name,
                        surface,
                        TRAINING_TIMES,
                        EVALUATION_TIMES,
                        model="logistic" if name == "story0" else None,
                    )
                    for name, surface in corpus.items()
                ]
                for job in jobs:
                    await job.wait()
                return service.stats()

        stats = asyncio.run(run())
        by_model = stats["autotuner_by_model"]
        assert set(by_model) == {"dl", "logistic"}
        assert by_model["logistic"]["observations"] >= 1
        assert by_model["dl"]["observations"] >= 1
        # The default model's tuner is still exposed as stats["autotuner"].
        assert stats["autotuner"] == by_model["dl"]

    def test_sharder_separates_models(self, corpus):
        sharder = CorpusSharder(solver=SOLVER)
        shards = sharder.shard(
            corpus,
            TRAINING_TIMES,
            EVALUATION_TIMES,
            models={"story0": "logistic"},
        )
        assert len(shards) == 2
        by_model = {shard.key.model: shard.story_names for shard in shards}
        assert by_model["logistic"] == ("story0",)
        assert len(by_model["dl"]) == len(corpus) - 1

    def test_unknown_model_fails_at_submit(self, corpus):
        async def run():
            async with PredictionService(solver=SOLVER) as service:
                with pytest.raises(UnknownModelError):
                    await service.submit(
                        "x", corpus["story0"], TRAINING_TIMES, model="frobnicate"
                    )

        asyncio.run(run())

    def test_unknown_default_model_fails_at_construction(self):
        with pytest.raises(UnknownModelError):
            PredictionService(model="frobnicate")

    def test_dl_parameters_rejected_for_other_models(self):
        with pytest.raises(ValueError, match="model_params"):
            PredictionService(
                model="logistic", parameters=PAPER_S1_HOP_PARAMETERS
            )


class TestModelOverrideParams:
    def test_override_params_reach_the_override_model(self, corpus):
        # Regression: per-model params for *non-default* models used to be
        # dropped on the shard-solving path, so an override model always ran
        # with registry defaults no matter what the caller configured.
        pool_percent = 80.0
        story = {"story0": corpus["story0"]}

        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS,
                solver=SOLVER,
                model_overrides={"sis": {"pool_percent": pool_percent}},
            ) as service:
                job = await service.submit(
                    "story0",
                    corpus["story0"],
                    TRAINING_TIMES,
                    EVALUATION_TIMES,
                    model="sis",
                )
                return await job.wait()

        served = asyncio.run(run())
        tuned = direct_results(
            "sis",
            story,
            ModelSpec(
                name="sis", params={"pool_percent": pool_percent}, solver=SOLVER
            ),
        )["story0"]
        default = direct_results(
            "sis", story, ModelSpec(name="sis", solver=SOLVER)
        )["story0"]

        assert served.diagnostics["calibration"]["pool_percent"] == pool_percent
        assert np.array_equal(served.predicted.values, tuned.predicted.values)
        # The override must actually change the fit, or this test proves
        # nothing: the configured pool shifts the SIS saturation level.
        assert not np.array_equal(tuned.predicted.values, default.predicted.values)

    def test_override_params_are_validated_like_direct_params(self, corpus):
        async def run():
            async with PredictionService(
                parameters=PAPER_S1_HOP_PARAMETERS,
                solver=SOLVER,
                model_overrides={"linear-influence": {"frobnicate": 1}},
            ) as service:
                job = await service.submit(
                    "story0",
                    corpus["story0"],
                    TRAINING_TIMES,
                    EVALUATION_TIMES,
                    model="linear-influence",
                )
                with pytest.raises(ValueError, match="does not understand params"):
                    await job.wait()

        asyncio.run(run())

    def test_default_model_key_rejected(self):
        with pytest.raises(ValueError, match="model_params"):
            PredictionService(
                solver=SOLVER, model_overrides={"dl": {"parameters": None}}
            )

    def test_unknown_override_model_rejected(self):
        with pytest.raises(UnknownModelError):
            PredictionService(
                solver=SOLVER, model_overrides={"frobnicate": {"x": 1}}
            )


class TestCompareModels:
    def test_head_to_head_covers_requested_models(self, corpus):
        small = {name: corpus[name] for name in list(corpus)[:2]}
        comparison = compare_models(
            small,
            models=("dl", "logistic", "sis"),
            training_times=TRAINING_TIMES,
            evaluation_times=EVALUATION_TIMES,
            solver=SOLVER,
            specs={
                "dl": ModelSpec(
                    name="dl",
                    params={"parameters": PAPER_S1_HOP_PARAMETERS},
                    solver=SOLVER,
                )
            },
        )
        assert comparison.model_names == ("dl", "logistic", "sis")
        rows = comparison.summary_rows()
        assert len(rows) == 3
        for row in rows:
            assert 0.0 <= row["overall_accuracy"] <= 1.0
            for story in small:
                assert row[story] is not None
        # The DL-generated corpus is the DL model's home turf.
        assert rows[0]["model"] == "dl"

    def test_per_model_failures_are_isolated(self, corpus):
        # Two training hours starve linear-influence (needs >= 3) but not
        # the logistic baseline; the comparison must report the failure and
        # still score the healthy model.
        small = {"story0": corpus["story0"]}
        comparison = compare_models(
            small,
            models=("logistic", "linear-influence"),
            training_times=[1.0, 2.0],
            evaluation_times=[3.0, 4.0],
            solver=SOLVER,
        )
        assert comparison.results["logistic"]
        assert not comparison.results["linear-influence"]
        assert "story0" in comparison.failures["linear-influence"]
