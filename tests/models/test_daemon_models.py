"""Daemon-level coverage of the model registry: mixed manifests + metrics op."""

import asyncio

from repro.models import get_model
from repro.service import DaemonClient

from tests.service.test_daemon import (
    collect_submission,
    inline_story,
    manifest_payload,
    running_daemon,
    TRAINING_TIMES,
)


def _surface_for(story: dict):
    from repro.service.manifest import parse_manifest, resolve_manifest

    manifest = parse_manifest(manifest_payload(story))
    return resolve_manifest(manifest, None, TRAINING_TIMES).surfaces[story["name"]]


class TestMixedModelManifest:
    def test_per_story_models_resolve_and_attribute(self, tmp_path):
        async def run():
            manifest = manifest_payload(
                inline_story("alpha"),
                {**inline_story("beta", scale=1.2), "model": "logistic"},
            )
            async with running_daemon(tmp_path) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    accepted, results, job, errors = await collect_submission(
                        client, manifest
                    )
                    stats = await client.stats()
            return results, stats

        results, stats = asyncio.run(run())
        assert results["alpha"]["model"] == "dl"
        assert results["beta"]["model"] == "logistic"
        assert results["beta"]["status"] == "succeeded"
        # Different models: never one shard, even with one spatial signature.
        assert stats["service"]["shards_solved"] >= 2
        metrics = stats["metrics"]
        assert metrics['service.jobs_succeeded{model="dl"}'] == 1
        assert metrics['service.jobs_succeeded{model="logistic"}'] == 1

        # Streamed logistic result is bit-identical to the direct path.
        surface = _surface_for(inline_story("beta", scale=1.2))
        fitted = get_model("logistic").fit(surface, training_times=TRAINING_TIMES)
        reference = fitted.evaluate(surface, times=TRAINING_TIMES[1:])
        assert results["beta"]["overall_accuracy"] == reference.overall_accuracy
        assert (
            results["beta"]["parameters"] == reference.parameters.to_json_dict()
        )

    def test_submit_model_override_applies_to_unmarked_stories(self, tmp_path):
        async def run():
            manifest = manifest_payload(inline_story("alpha"))
            async with running_daemon(tmp_path) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    _, results, _, errors = await collect_submission(
                        client, manifest, model="sis"
                    )
            return results, errors

        results, errors = asyncio.run(run())
        assert not errors
        assert results["alpha"]["model"] == "sis"

    def test_unknown_submit_model_is_an_error_event(self, tmp_path):
        async def run():
            manifest = manifest_payload(inline_story("alpha"))
            async with running_daemon(tmp_path) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    _, results, _, errors = await collect_submission(
                        client, manifest, model="frobnicate"
                    )
            return results, errors

        results, errors = asyncio.run(run())
        assert not results
        assert errors and "frobnicate" in errors[0]["error"]

    def test_unknown_manifest_model_is_an_error_event(self, tmp_path):
        async def run():
            manifest = manifest_payload(
                {**inline_story("alpha"), "model": "frobnicate"}
            )
            async with running_daemon(tmp_path) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    _, results, _, errors = await collect_submission(
                        client, manifest
                    )
            return errors

        errors = asyncio.run(run())
        assert errors and "frobnicate" in errors[0]["error"]


class TestMetricsOp:
    def test_metrics_op_returns_prometheus_text(self, tmp_path):
        async def run():
            manifest = manifest_payload(inline_story("alpha"))
            async with running_daemon(tmp_path) as (socket_path, _):
                async with await DaemonClient.connect_unix(socket_path) as client:
                    await collect_submission(client, manifest)
                    return await client.metrics_text()

        text = asyncio.run(run())
        assert "# TYPE repro_service_jobs_succeeded_total counter" in text
        assert 'repro_service_jobs_succeeded_total{model="dl"} 1' in text
        assert "# TYPE repro_daemon_requests_total counter" in text
