"""Tests for the built-in model adapters behind the unified protocol."""

import json

import numpy as np
import pytest

from repro.baselines.linear_influence import LinearInfluenceBaseline
from repro.baselines.logistic import PerDistanceLogisticBaseline
from repro.baselines.sis import SISBaseline
from repro.cascade.density import DensitySurface
from repro.core.config import CalibrationConfig, ModelSpec, SolverConfig
from repro.core.dl_model import DiffusiveLogisticModel
from repro.core.errors import NotFittedError
from repro.core.initial_density import InitialDensity
from repro.core.parameters import PAPER_S1_HOP_PARAMETERS
from repro.core.prediction import BatchPredictor, DiffusionPredictor
from repro.models import (
    GraphSeededModel,
    available_models,
    get_model,
    register_graph_models,
    unregister_model,
)

TRAINING_TIMES = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
EVALUATION_TIMES = TRAINING_TIMES[1:]
SOLVER = SolverConfig(points_per_unit=12, max_step=0.02)


def synthetic_surface(seed_densities):
    phi = InitialDensity([1, 2, 3, 4, 5], seed_densities)
    model = DiffusiveLogisticModel(
        PAPER_S1_HOP_PARAMETERS, points_per_unit=12, max_step=0.02
    )
    surface = model.predict(phi, [float(t) for t in range(1, 9)])
    return DensitySurface(
        distances=surface.distances,
        times=surface.times,
        values=surface.values,
        group_sizes=np.ones(surface.distances.size),
    )


@pytest.fixture(scope="module")
def surface():
    return synthetic_surface([5.0, 2.0, 2.5, 1.5, 1.0])


class TestDLAdapter:
    def test_fit_evaluate_matches_diffusion_predictor(self, surface):
        spec = ModelSpec(name="dl", solver=SOLVER)
        fitted = get_model("dl").fit(surface, spec, TRAINING_TIMES)
        result = fitted.evaluate(surface, times=EVALUATION_TIMES)

        reference = (
            DiffusionPredictor(solver=SOLVER, calibration=CalibrationConfig())
            .fit(surface, training_times=TRAINING_TIMES)
            .evaluate(surface, times=EVALUATION_TIMES)
        )
        assert np.array_equal(result.predicted.values, reference.predicted.values)
        assert result.parameters == reference.parameters
        assert result.model == "dl"

    def test_batch_fitter_matches_batch_predictor(self, surface):
        other = synthetic_surface([2.0, 4.0, 1.0, 3.0, 2.0])
        corpus = {"a": surface, "b": other}
        spec = ModelSpec(name="dl", solver=SOLVER)
        fitter = get_model("dl").fit_batch(corpus, spec, TRAINING_TIMES)
        results = fitter.evaluate(corpus, times=EVALUATION_TIMES)

        reference = (
            BatchPredictor(solver=SOLVER)
            .fit(corpus, training_times=TRAINING_TIMES)
            .evaluate(corpus, times=EVALUATION_TIMES)
        )
        for name in corpus:
            assert np.array_equal(
                results[name].predicted.values, reference[name].predicted.values
            )
            assert results[name].parameters == reference.results[name].parameters

    def test_explicit_parameters_skip_calibration(self, surface):
        spec = ModelSpec(
            name="dl", params={"parameters": PAPER_S1_HOP_PARAMETERS}, solver=SOLVER
        )
        fitted = get_model("dl").fit(surface, spec, TRAINING_TIMES)
        assert fitted.parameters == PAPER_S1_HOP_PARAMETERS
        assert fitted.calibration_details["calibrated"] is False


class TestTemporalAdapters:
    @pytest.mark.parametrize("name", ["logistic", "sis", "linear-influence"])
    def test_fit_predict_evaluate(self, surface, name):
        fitted = get_model(name).fit(surface, training_times=TRAINING_TIMES)
        predicted = fitted.predict(EVALUATION_TIMES)
        assert predicted.values.shape == (len(EVALUATION_TIMES), 5)

        result = fitted.evaluate(surface, times=EVALUATION_TIMES)
        assert result.model == name
        assert 0.0 <= result.overall_accuracy <= 1.0
        # The generic result drops DL-only artifacts instead of faking them.
        assert result.solution is None and result.initial_density is None
        # Parameters must survive JSON round-trips for the CLI/daemon payloads.
        payload = json.loads(json.dumps(result.parameters.to_json_dict()))
        assert payload["model"] == name

    @pytest.mark.parametrize("name", ["logistic", "sis", "linear-influence"])
    def test_matches_underlying_baseline(self, surface, name):
        fitted = get_model(name).fit(surface, training_times=TRAINING_TIMES)
        baseline = {
            "logistic": PerDistanceLogisticBaseline(),
            "sis": None,  # pool chosen adaptively; compared via explicit param below
            "linear-influence": LinearInfluenceBaseline(),
        }[name]
        if baseline is None:
            return
        reference = baseline.fit(surface, TRAINING_TIMES).predict(EVALUATION_TIMES)
        assert np.array_equal(
            fitted.predict(EVALUATION_TIMES).values, reference.values
        )

    def test_sis_pool_param_matches_explicit_baseline(self, surface):
        spec = ModelSpec(name="sis", params={"pool_percent": 40.0})
        fitted = get_model("sis").fit(surface, spec, TRAINING_TIMES)
        reference = (
            SISBaseline(pool_percent=40.0)
            .fit(surface, TRAINING_TIMES)
            .predict(EVALUATION_TIMES)
        )
        assert np.array_equal(
            fitted.predict(EVALUATION_TIMES).values, reference.values
        )

    def test_predict_restricts_distances(self, surface):
        fitted = get_model("logistic").fit(surface, training_times=TRAINING_TIMES)
        predicted = fitted.predict(EVALUATION_TIMES, distances=[1.0, 3.0])
        assert predicted.distances.tolist() == [1.0, 3.0]


class TestNotFittedBaselines:
    @pytest.mark.parametrize(
        "baseline",
        [PerDistanceLogisticBaseline(), SISBaseline(), LinearInfluenceBaseline()],
    )
    def test_predict_before_fit_raises_shared_error(self, baseline):
        with pytest.raises(NotFittedError, match="call fit\\(\\) first"):
            baseline.predict([2.0, 3.0])

    def test_influence_matrix_before_fit(self):
        with pytest.raises(NotFittedError):
            LinearInfluenceBaseline().influence_matrix


class TestGraphSeededAdapter:
    def test_ic_and_lt_derive_density_surfaces(self, small_graph, surface):
        hub = max(small_graph.users(), key=small_graph.out_degree)
        for process in ("ic", "lt"):
            model = GraphSeededModel(process, small_graph, hub)
            fitted = model.fit(surface, training_times=TRAINING_TIMES)
            predicted = fitted.predict(EVALUATION_TIMES)
            assert predicted.values.shape == (len(EVALUATION_TIMES), 5)
            assert np.all(predicted.values >= 0.0)
            # Cumulative activation: densities never decrease over time.
            assert np.all(np.diff(predicted.values, axis=0) >= -1e-12)
            result = fitted.evaluate(surface, times=EVALUATION_TIMES)
            assert result.model == process
            assert 0.0 <= result.overall_accuracy <= 1.0

    def test_fit_is_deterministic(self, small_graph, surface):
        hub = max(small_graph.users(), key=small_graph.out_degree)
        model = GraphSeededModel("ic", small_graph, hub, rng_seed=3)
        first = model.fit(surface, training_times=TRAINING_TIMES)
        second = model.fit(surface, training_times=TRAINING_TIMES)
        assert np.array_equal(
            first.predict(EVALUATION_TIMES).values,
            second.predict(EVALUATION_TIMES).values,
        )

    def test_register_graph_models(self, small_graph, surface):
        hub = max(small_graph.users(), key=small_graph.out_degree)
        names = register_graph_models(small_graph, hub)
        try:
            assert set(names) <= set(available_models())
            fitted = get_model("ic").fit(surface, training_times=TRAINING_TIMES)
            assert fitted.model_name == "ic"
        finally:
            for name in names:
                unregister_model(name)

    def test_unknown_process_rejected(self, small_graph):
        with pytest.raises(ValueError, match="unknown process"):
            GraphSeededModel("sir", small_graph, 0)
