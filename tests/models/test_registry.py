"""Tests for the model registry and the typed config objects."""

import pytest

from repro.core.config import CalibrationConfig, ModelSpec, SolverConfig
from repro.core.errors import NotFittedError, UnknownModelError
from repro.core.prediction import BatchPredictor, DiffusionPredictor
from repro.models import (
    PredictionModel,
    available_models,
    get_model,
    model_descriptions,
    register_model,
    unregister_model,
)
from repro.models.base import coerce_spec


class TestRegistry:
    def test_builtins_are_registered(self):
        names = available_models()
        for name in ("dl", "logistic", "sis", "linear-influence"):
            assert name in names

    def test_get_model_returns_fresh_instances(self):
        assert get_model("dl") is not get_model("dl")

    def test_unknown_model_raises_with_registered_list(self):
        with pytest.raises(UnknownModelError) as excinfo:
            get_model("frobnicate")
        message = str(excinfo.value)
        assert "frobnicate" in message
        assert "dl" in message and "logistic" in message
        # A failed lookup is a KeyError, so dict-style handling works too.
        assert isinstance(excinfo.value, KeyError)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_model("dl", get_model("dl").__class__)

    def test_overwrite_and_unregister(self):
        class Custom(PredictionModel):
            name = "custom-test-model"
            description = "a test model"

            def fit(self, observed, spec=None, training_times=None):
                raise NotImplementedError

        register_model("custom-test-model", Custom)
        try:
            assert "custom-test-model" in available_models()
            assert isinstance(get_model("custom-test-model"), Custom)
            # Re-registering without overwrite fails, with overwrite works.
            with pytest.raises(ValueError):
                register_model("custom-test-model", Custom)
            register_model("custom-test-model", Custom, overwrite=True)
        finally:
            unregister_model("custom-test-model")
        assert "custom-test-model" not in available_models()
        with pytest.raises(UnknownModelError):
            unregister_model("custom-test-model")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_model("", lambda: None)

    def test_descriptions_cover_every_model(self):
        descriptions = model_descriptions()
        assert set(descriptions) == set(available_models())
        assert all(isinstance(text, str) for text in descriptions.values())


class TestSolverConfig:
    def test_defaults_match_the_legacy_knobs(self):
        config = SolverConfig()
        assert config.points_per_unit == 20
        assert config.max_step == 0.02
        assert config.backend == "internal"
        assert config.operator == "auto"

    def test_validation(self):
        with pytest.raises(ValueError):
            SolverConfig(points_per_unit=0)
        with pytest.raises(ValueError):
            SolverConfig(max_step=0.0)

    def test_replace_and_hashable(self):
        config = SolverConfig().replace(points_per_unit=12)
        assert config.points_per_unit == 12
        assert hash(config) == hash(SolverConfig(points_per_unit=12))

    def test_mixing_config_and_legacy_knobs_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            DiffusionPredictor(points_per_unit=12, solver=SolverConfig())
        with pytest.raises(ValueError, match="not both"):
            BatchPredictor(backend="scipy", solver=SolverConfig())
        with pytest.raises(ValueError, match="not both"):
            DiffusionPredictor(
                calibration_batch=True, calibration=CalibrationConfig()
            )

    def test_legacy_knobs_build_the_config(self):
        predictor = DiffusionPredictor(points_per_unit=12, backend="scipy")
        assert predictor.solver_config == SolverConfig(
            points_per_unit=12, backend="scipy"
        )
        assert predictor.calibration_config == CalibrationConfig(batch=False)
        assert BatchPredictor().calibration_config == CalibrationConfig(batch=True)


class TestModelSpec:
    def test_params_are_copied(self):
        params = {"ridge": 1.0}
        spec = ModelSpec(name="linear-influence", params=params)
        params["ridge"] = 2.0
        assert spec.params["ridge"] == 1.0

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ModelSpec(name="")

    def test_coerce_spec_defaults(self):
        spec = coerce_spec(None, "logistic")
        assert spec.name == "logistic"
        assert spec.solver == SolverConfig()

    def test_coerce_spec_rejects_wrong_model(self):
        with pytest.raises(ValueError, match="passed to the 'sis' model"):
            coerce_spec(ModelSpec(name="logistic"), "sis")

    def test_coerce_spec_rejects_unknown_params(self):
        spec = ModelSpec(name="logistic", params={"frobnicate": 1})
        with pytest.raises(ValueError, match="does not understand params"):
            coerce_spec(spec, "logistic", ("carrying_capacity_cap",))

    def test_to_json_dict_is_plain(self):
        import json

        spec = ModelSpec(name="sis", params={"pool_percent": 40.0})
        assert json.loads(json.dumps(spec.to_json_dict()))["name"] == "sis"


class TestNotFittedError:
    def test_predictor_raises_typed_error(self):
        with pytest.raises(NotFittedError):
            DiffusionPredictor().parameters
        with pytest.raises(NotFittedError):
            BatchPredictor().evaluate({})

    def test_not_fitted_is_a_runtime_error(self):
        # Pre-registry callers caught RuntimeError; the typed error subclasses
        # it so they keep working.
        assert issubclass(NotFittedError, RuntimeError)
