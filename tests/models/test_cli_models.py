"""CLI coverage for the model registry: --model, models, compare."""

import json

import pytest

from repro.cli import build_parser, main

CORPUS_ARGS = ["--users", "900", "--background-stories", "25", "--seed", "1234"]


class TestParser:
    def test_model_defaults(self):
        assert build_parser().parse_args(["predict"]).model == "dl"
        assert build_parser().parse_args(["predict-batch"]).model == "dl"
        assert build_parser().parse_args(["daemon"]).model == "dl"
        # serve-batch / submit default to None so only an explicit flag
        # overrides the manifest's model fields.
        serve = build_parser().parse_args(["serve-batch", "--manifest", "m.json"])
        assert serve.model is None
        submit = build_parser().parse_args(
            ["submit", "--socket", "s", "--manifest", "m.json"]
        )
        assert submit.model is None

    def test_unknown_model_accepted_by_parser(self):
        # Models are validated against the live registry at run time
        # (mirroring --backend), not by argparse choices.
        args = build_parser().parse_args(["predict", "--model", "quantum"])
        assert args.model == "quantum"

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.models == ["dl", "logistic", "sis"]
        assert args.stories == ["s1", "s2", "s3", "s4"]
        assert args.hours == 6
        assert args.json is None

    def test_daemon_stats_prometheus_flag(self):
        args = build_parser().parse_args(["daemon-stats", "--socket", "s"])
        assert args.prometheus is False
        args = build_parser().parse_args(
            ["daemon-stats", "--socket", "s", "--prometheus"]
        )
        assert args.prometheus is True


class TestUnknownModelExitCodes:
    @pytest.mark.parametrize(
        "argv",
        [
            ["predict", "--model", "frobnicate"],
            ["predict-batch", "--model", "frobnicate"],
            ["compare", "--models", "dl", "frobnicate"],
            ["daemon", "--model", "frobnicate"],
        ],
    )
    def test_unknown_model_exits_2_with_registered_list(self, argv, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "unknown model 'frobnicate'" in err
        assert "'dl'" in err and "'logistic'" in err

    def test_serve_batch_unknown_model_exits_2(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({"stories": []}))
        assert main(
            ["serve-batch", "--manifest", str(manifest), "--model", "frobnicate"]
        ) == 2
        assert "unknown model" in capsys.readouterr().err


class TestModelsCommand:
    def test_lists_registered_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("dl", "logistic", "sis", "linear-influence"):
            assert name in out
        assert "Registered prediction models" in out


class TestPredictWithBaselineModel:
    def test_predict_logistic_prints_model_tagged_table(self, capsys):
        code = main(
            ["predict", *CORPUS_ARGS, "--hours", "4", "--model", "logistic"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "(logistic model)" in out
        assert "ModelParameters(model='logistic'" in out

    def test_predict_batch_json_carries_model(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        code = main(
            [
                "predict-batch",
                *CORPUS_ARGS,
                "--hours",
                "4",
                "--stories",
                "s1",
                "--model",
                "logistic",
                "--json",
                str(path),
            ]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["model"] == "logistic"
        story = payload["stories"]["s1"]
        assert story["model"] == "logistic"
        assert story["parameters"]["model"] == "logistic"


class TestCompareCommand:
    def test_head_to_head_table_and_json(self, tmp_path, capsys):
        path = tmp_path / "compare.json"
        code = main(
            [
                "compare",
                *CORPUS_ARGS,
                "--stories",
                "s1",
                "--hours",
                "4",
                "--models",
                "logistic",
                "sis",
                "--json",
                str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Head-to-head accuracy" in out
        assert "logistic" in out and "sis" in out
        payload = json.loads(path.read_text())
        assert set(payload["models"]) == {"logistic", "sis"}
        for entry in payload["models"].values():
            assert 0.0 <= entry["overall_accuracy"] <= 1.0
