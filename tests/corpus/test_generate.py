"""Synthetic workload generator: validation, distributions, determinism."""

import numpy as np
import pytest

from repro.corpus import (
    WorkloadConfig,
    generate_store,
    generate_workload,
    iter_workload,
)

SMALL = WorkloadConfig(stories=40, seed=11, min_distances=3, max_distances=8, min_hours=4, max_hours=10)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"stories": -1}, "stories must be >= 0"),
            ({"min_distances": 0}, "min_distances"),
            ({"min_distances": 9, "max_distances": 4}, "min_distances"),
            ({"min_hours": 1}, "min_hours"),
            ({"min_hours": 20, "max_hours": 10}, "min_hours"),
            ({"peak_density": 0.0}, "peak_density"),
            ({"growth_rate": -1.0}, "growth_rate"),
            ({"bursts": 0}, "bursts"),
            ({"burst_spread_hours": -0.1}, "burst_spread_hours"),
            ({"metric": "miles"}, "metric"),
            ({"unit": "furlongs"}, "unit"),
        ],
    )
    def test_rejects_bad_values(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            WorkloadConfig(**kwargs)

    def test_defaults_are_valid(self):
        assert WorkloadConfig().stories == 1000


class TestWorkloadShape:
    def test_distributions_stay_within_bounds(self):
        for name, surface in iter_workload(SMALL):
            assert name.startswith("story-")
            assert SMALL.min_distances <= surface.distances.size <= SMALL.max_distances
            assert SMALL.min_hours <= surface.times.size <= SMALL.max_hours
            assert surface.values.shape == (surface.times.size, surface.distances.size)
            assert surface.unit == SMALL.unit
            # Strictly positive first hour: nothing gets skipped by the
            # resolver's empty-anchor check.
            assert np.all(surface.profile(surface.times[0]) > 0)
            # Logistic growth is monotone in time.
            assert np.all(np.diff(surface.values, axis=0) >= 0)

    def test_metadata_records_burst_arrivals(self):
        bursts = set()
        for _, surface in iter_workload(SMALL):
            meta = surface.metadata
            assert meta["source"] == "synthetic_workload"
            assert meta["seed"] == SMALL.seed
            bursts.add(meta["burst"])
            assert isinstance(meta["arrival_hour"], float)
        assert bursts <= set(range(SMALL.bursts))
        assert len(bursts) > 1  # 40 stories over 4 bursts hit more than one

    def test_story_count_and_names(self):
        corpus = generate_workload(SMALL)
        assert len(corpus) == SMALL.stories
        assert sorted(corpus) == [f"story-{i:06d}" for i in range(SMALL.stories)]


class TestDeterminism:
    def test_same_seed_same_surfaces(self):
        one = generate_workload(SMALL)
        two = generate_workload(SMALL)
        for name in one:
            np.testing.assert_array_equal(one[name].values, two[name].values)

    def test_different_seed_different_surfaces(self):
        one = generate_workload(SMALL)
        other = generate_workload(
            WorkloadConfig(**{**SMALL.__dict__, "seed": SMALL.seed + 1})
        )
        assert any(
            one[name].values.shape != other[name].values.shape
            or not np.array_equal(one[name].values, other[name].values)
            for name in one
        )

    def test_same_config_byte_identical_store(self, tmp_path):
        generate_store(SMALL, tmp_path / "one")
        generate_store(SMALL, tmp_path / "two")
        files = sorted(
            p.relative_to(tmp_path / "one")
            for p in (tmp_path / "one").rglob("*")
            if p.is_file()
        )
        assert files
        for relative in files:
            assert (tmp_path / "one" / relative).read_bytes() == (
                tmp_path / "two" / relative
            ).read_bytes(), f"{relative} differs between identically configured runs"

    def test_store_matches_in_memory_workload(self, tmp_path):
        store = generate_store(SMALL, tmp_path / "store")
        corpus = generate_workload(SMALL)
        assert set(store.story_names) == set(corpus)
        assert store.metric == SMALL.metric
        for name in list(corpus)[:5]:
            np.testing.assert_array_equal(
                store.load(name).values, corpus[name].values
            )
        assert store.verify() == []
