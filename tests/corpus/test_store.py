"""Corpus store: round-trips, determinism, lazy reads, integrity checks."""

import json

import numpy as np
import pytest

from repro.cascade.density import DensitySurface
from repro.corpus import (
    CorpusStore,
    CorpusStoreError,
    CorpusStoreWriter,
    build_store,
    clear_shard_cache,
    export_inline_manifest,
    mmap_npz,
    write_deterministic_npz,
)
from repro.service import open_corpus


def make_surface(seed: int = 0, n_distances: int = 4, n_hours: int = 6) -> DensitySurface:
    rng = np.random.default_rng(seed)
    return DensitySurface(
        distances=np.arange(1.0, n_distances + 1.0),
        times=np.arange(1.0, n_hours + 1.0),
        values=np.cumsum(rng.uniform(0.1, 1.0, size=(n_hours, n_distances)), axis=0),
        group_sizes=np.ones(n_distances),
        metadata={"seed": seed, "ignored": object()},
    )


@pytest.fixture
def corpus():
    return {f"story-{i}": make_surface(i) for i in range(5)}


class TestDeterministicNpz:
    def test_byte_identical_across_writes(self, tmp_path):
        arrays = {"a": np.arange(12.0).reshape(3, 4), "b": np.ones(3)}
        write_deterministic_npz(tmp_path / "one.npz", arrays)
        write_deterministic_npz(tmp_path / "two.npz", arrays)
        assert (tmp_path / "one.npz").read_bytes() == (tmp_path / "two.npz").read_bytes()

    def test_mmap_matches_np_load(self, tmp_path):
        arrays = {"a": np.arange(12.0).reshape(3, 4), "b": np.arange(5.0)}
        path = tmp_path / "data.npz"
        write_deterministic_npz(path, arrays)
        mapped = mmap_npz(path)
        loaded = np.load(path)
        for name in arrays:
            assert isinstance(mapped[name], np.memmap)
            np.testing.assert_array_equal(np.asarray(mapped[name]), loaded[name])


class TestWriterAndRoundTrip:
    def test_round_trip(self, tmp_path, corpus):
        store = build_store(tmp_path / "store", corpus, metric="hops", hours=6)
        assert len(store) == len(corpus)
        assert store.metric == "hops"
        assert store.hours == 6
        for name, surface in corpus.items():
            loaded = store.load(name)
            np.testing.assert_array_equal(loaded.distances, surface.distances)
            np.testing.assert_array_equal(loaded.times, surface.times)
            np.testing.assert_array_equal(loaded.values, surface.values)
            np.testing.assert_array_equal(loaded.group_sizes, surface.group_sizes)
            assert loaded.unit == surface.unit
            # Only JSON-able metadata survives the index.
            assert loaded.metadata["seed"] == surface.metadata["seed"]
            assert "ignored" not in loaded.metadata

    def test_duplicate_story_name_rejected(self, tmp_path, corpus):
        writer = CorpusStoreWriter(tmp_path / "store")
        writer.add("story", make_surface(1))
        with pytest.raises(CorpusStoreError, match="duplicate story name"):
            writer.add("story", make_surface(2))

    def test_duplicate_name_across_shards_rejected(self, tmp_path):
        # max_shard_stories=1 flushes the first copy to its own shard before
        # the second add, so the collision crosses a shard boundary.
        writer = CorpusStoreWriter(tmp_path / "store", max_shard_stories=1)
        writer.add("story", make_surface(1))
        with pytest.raises(CorpusStoreError, match="duplicate story name"):
            writer.add("story", make_surface(2))

    def test_zero_story_store(self, tmp_path):
        store = CorpusStoreWriter(tmp_path / "store").finalize()
        assert len(store) == 0
        assert store.story_names == ()
        assert store.verify() == []
        assert len(CorpusStore.open(tmp_path / "store")) == 0

    def test_byte_identical_stores_from_same_content(self, tmp_path, corpus):
        build_store(tmp_path / "one", corpus)
        build_store(tmp_path / "two", corpus)
        files = sorted(
            p.relative_to(tmp_path / "one")
            for p in (tmp_path / "one").rglob("*")
            if p.is_file()
        )
        assert files
        for relative in files:
            assert (tmp_path / "one" / relative).read_bytes() == (
                tmp_path / "two" / relative
            ).read_bytes()

    def test_shards_split_by_signature_and_size(self, tmp_path):
        surfaces = {
            "a": make_surface(1, n_distances=4),
            "b": make_surface(2, n_distances=4),
            "c": make_surface(3, n_distances=7),
        }
        store = build_store(tmp_path / "store", surfaces, max_shard_stories=1)
        assert len(store.index["shards"]) == 3
        assert store.verify() == []


class TestLazySurface:
    def test_handle_reads_lazily(self, tmp_path, corpus):
        store = build_store(tmp_path / "store", corpus)
        handle = store.handle("story-2")
        reference = corpus["story-2"]
        np.testing.assert_array_equal(handle.distances, reference.distances)
        np.testing.assert_array_equal(
            handle.profile(1.0), reference.profile(1.0)
        )
        with pytest.raises(KeyError):
            handle.profile(99.0)
        loaded = handle.load()
        np.testing.assert_array_equal(loaded.values, reference.values)

    def test_handle_is_picklable(self, tmp_path, corpus):
        import pickle

        store = build_store(tmp_path / "store", corpus)
        handle = pickle.loads(pickle.dumps(store.handle("story-0")))
        np.testing.assert_array_equal(
            handle.load().values, corpus["story-0"].values
        )

    def test_missing_story_raises(self, tmp_path, corpus):
        store = build_store(tmp_path / "store", corpus)
        with pytest.raises(CorpusStoreError, match="'nope' is not in the corpus store"):
            store.handle("nope")


class TestVerify:
    def test_detects_shard_corruption(self, tmp_path, corpus):
        store = build_store(tmp_path / "store", corpus)
        shard_path = tmp_path / "store" / store.index["shards"][0]["file"]
        raw = bytearray(shard_path.read_bytes())
        raw[-9] ^= 0xFF  # flip a bit inside the last member's data region
        shard_path.write_bytes(bytes(raw))
        clear_shard_cache()
        problems = store.verify()
        assert any("file hash mismatch" in line for line in problems)

    def test_detects_content_hash_mismatch(self, tmp_path, corpus):
        store = build_store(tmp_path / "store", corpus)
        name = store.story_names[0]
        index_path = tmp_path / "store" / "index.json"
        index = json.loads(index_path.read_text())
        index["stories"][name]["sha256"] = "0" * 64
        index_path.write_text(json.dumps(index))
        clear_shard_cache()
        problems = CorpusStore.open(tmp_path / "store").verify()
        assert any(
            "content hash mismatch" in line and name in line for line in problems
        )

    def test_detects_missing_shard_and_dangling_reference(self, tmp_path, corpus):
        store = build_store(tmp_path / "store", corpus)
        index_path = tmp_path / "store" / "index.json"
        index = json.loads(index_path.read_text())
        name = next(iter(index["stories"]))
        index["stories"][name]["shard"] = 99
        index_path.write_text(json.dumps(index))
        (tmp_path / "store" / store.index["shards"][0]["file"]).unlink()
        clear_shard_cache()
        problems = CorpusStore.open(tmp_path / "store").verify()
        assert any("shard file is missing" in line for line in problems)
        assert any("dangling shard reference" in line for line in problems)

    def test_clean_store_verifies(self, tmp_path, corpus):
        assert build_store(tmp_path / "store", corpus).verify() == []


class TestOpenAndExport:
    def test_open_accepts_directory_and_index_path(self, tmp_path, corpus):
        build_store(tmp_path / "store", corpus)
        by_dir = CorpusStore.open(tmp_path / "store")
        by_index = CorpusStore.open(tmp_path / "store" / "index.json")
        assert by_dir.story_names == by_index.story_names

    def test_open_rejects_non_store(self, tmp_path):
        with pytest.raises(CorpusStoreError, match="no corpus store here"):
            CorpusStore.open(tmp_path / "missing")
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(CorpusStoreError, match="not a corpus store index"):
            CorpusStore.open(bogus)

    def test_version_mismatch_rejected(self, tmp_path, corpus):
        build_store(tmp_path / "store", corpus)
        index_path = tmp_path / "store" / "index.json"
        index = json.loads(index_path.read_text())
        index["version"] = 99
        index_path.write_text(json.dumps(index))
        with pytest.raises(CorpusStoreError, match="unsupported store version"):
            CorpusStore.open(tmp_path / "store")

    def test_export_round_trips_exactly(self, tmp_path, corpus):
        store = build_store(
            tmp_path / "store", corpus, hours=6, model="dl", models={"story-1": "logistic"}
        )
        payload = json.loads(json.dumps(export_inline_manifest(store)))
        resolved = open_corpus(payload).resolve()
        assert set(resolved.surfaces) == set(corpus)
        for name, surface in corpus.items():
            np.testing.assert_array_equal(
                resolved.surfaces[name].values, surface.values
            )
        assert resolved.models == {"story-1": "logistic"}
        assert resolved.default_model == "dl"
